// Package regress implements the small amount of statistics the paper's
// methodology needs, from scratch on the standard library: ordinary
// least-squares linear regression (used to fit the sensitivity predictors
// of Section 4.3), Pearson correlation (used for counter selection), and
// basic model-quality summaries.
//
// The solver uses the normal equations with ridge-stabilized Gaussian
// elimination, which is plenty for the small, well-conditioned design
// matrices involved (a handful of counters over ~2000 training rows).
package regress

import (
	"errors"
	"fmt"
	"math"

	"harmonia/internal/floats"
)

// Model is a fitted linear model y = Intercept + Σ Coeffs[i]·x[i].
type Model struct {
	Intercept float64
	Coeffs    []float64
	// Names optionally labels each coefficient (same order as Coeffs).
	Names []string
	// R2 is the coefficient of determination on the training data.
	R2 float64
	// Corr is the Pearson correlation between fitted and observed values
	// on the training data, the "correlation coefficient" the paper
	// reports for its predictors (0.91 and 0.96 in Section 4.3).
	Corr float64
}

// Predict evaluates the model at feature vector x. A feature vector of
// the wrong length returns an error: models are often driven by
// externally sourced counter sets, and a shape mismatch there should be
// reported, not crash the controller.
func (m *Model) Predict(x []float64) (float64, error) {
	if len(x) != len(m.Coeffs) {
		return 0, fmt.Errorf("regress: predict with %d features, model has %d", len(x), len(m.Coeffs))
	}
	return m.eval(x), nil
}

// eval evaluates the model without shape checking; callers guarantee
// len(x) == len(m.Coeffs).
func (m *Model) eval(x []float64) float64 {
	y := m.Intercept
	for i, c := range m.Coeffs {
		y += c * x[i]
	}
	return y
}

func (m *Model) String() string {
	s := fmt.Sprintf("y = %+.4f", m.Intercept)
	for i, c := range m.Coeffs {
		name := fmt.Sprintf("x%d", i)
		if i < len(m.Names) {
			name = m.Names[i]
		}
		s += fmt.Sprintf(" %+.4f·%s", c, name)
	}
	return s
}

// ErrBadShape reports a degenerate training set.
var ErrBadShape = errors.New("regress: need at least one more observation than features")

// Fit performs ordinary least squares of y on the rows of X (one row per
// observation, one column per feature), with an intercept term. A tiny
// ridge term stabilizes nearly collinear designs.
func Fit(X [][]float64, y []float64, names []string) (*Model, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, ErrBadShape
	}
	p := len(X[0])
	if n <= p {
		return nil, ErrBadShape
	}
	for i, row := range X {
		if len(row) != p {
			return nil, fmt.Errorf("regress: row %d has %d features, want %d", i, len(row), p)
		}
	}

	// Build the augmented design matrix A = [1 | X] and solve the normal
	// equations (AᵀA + λI)β = Aᵀy.
	k := p + 1
	ata := make([][]float64, k)
	for i := range ata {
		ata[i] = make([]float64, k)
	}
	aty := make([]float64, k)
	row := make([]float64, k)
	for r := 0; r < n; r++ {
		row[0] = 1
		copy(row[1:], X[r])
		for i := 0; i < k; i++ {
			aty[i] += row[i] * y[r]
			for j := i; j < k; j++ {
				ata[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			ata[i][j] = ata[j][i]
		}
	}
	const ridge = 1e-9
	for i := 1; i < k; i++ { // do not penalize the intercept
		ata[i][i] += ridge * float64(n)
	}

	beta, err := solve(ata, aty)
	if err != nil {
		return nil, err
	}

	m := &Model{Intercept: beta[0], Coeffs: beta[1:], Names: names}

	// Training-set quality.
	fitted := make([]float64, n)
	for r := 0; r < n; r++ {
		fitted[r] = m.eval(X[r])
	}
	m.R2 = rSquared(y, fitted)
	m.Corr = Pearson(y, fitted)
	return m, nil
}

// solve performs Gaussian elimination with partial pivoting on a copy of
// the inputs.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	// Copy so callers keep their matrices.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
		m[i] = append(m[i], b[i])
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-14 {
			return nil, errors.New("regress: singular design matrix")
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv := 1 / m[col][col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] * inv
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = m[i][n] / m[i][i]
	}
	return x, nil
}

func rSquared(y, fitted []float64) float64 {
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssTot, ssRes float64
	for i := range y {
		ssTot += (y[i] - mean) * (y[i] - mean)
		ssRes += (y[i] - fitted[i]) * (y[i] - fitted[i])
	}
	if floats.Zero(ssTot) {
		return 0
	}
	return 1 - ssRes/ssTot
}

// Pearson returns the Pearson product-moment correlation coefficient
// between two equal-length series, or 0 when either series is constant.
func Pearson(a, b []float64) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return 0
	}
	var ma, mb float64
	for i := 0; i < n; i++ {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(n)
	mb /= float64(n)
	var cov, va, vb float64
	for i := 0; i < n; i++ {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if floats.Zero(va) || floats.Zero(vb) {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// MeanAbsError returns the mean absolute difference between two series,
// the quantity the paper reports as predictor error (Section 7.2: 3.03%
// bandwidth, 5.71% compute).
func MeanAbsError(want, got []float64) float64 {
	n := len(want)
	if n == 0 || n != len(got) {
		return math.NaN()
	}
	sum := 0.0
	for i := range want {
		sum += math.Abs(want[i] - got[i])
	}
	return sum / float64(n)
}

// ColumnCorrelations returns the Pearson correlation of each column of X
// against y, used for the paper's counter-selection step (Section 4.3,
// threshold ±0.5 per Bircher et al.).
func ColumnCorrelations(X [][]float64, y []float64) []float64 {
	if len(X) == 0 {
		return nil
	}
	p := len(X[0])
	out := make([]float64, p)
	col := make([]float64, len(X))
	for j := 0; j < p; j++ {
		for i := range X {
			col[i] = X[i][j]
		}
		out[j] = Pearson(col, y)
	}
	return out
}
