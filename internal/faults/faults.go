// Package faults is a composable, seed-deterministic fault-injection
// layer for the simulated platform. It perturbs what the Harmonia
// controller and the DAQ observe — never the underlying physics — so the
// CG+FG control loop can be exercised against the degraded inputs a real
// HD 7970 deployment produces: noisy performance counters, dropped or
// stale monitoring samples, DPM transitions that fail or lag, transient
// thermal-throttle events, and power-telemetry sample dropout.
//
// The injector sits between the session and the policy (see
// internal/session): the simulator always runs the configuration the
// hardware actually reached and the report records true time and energy,
// while the policy sees the faulted view. All randomness derives from
// the single configured seed, split into one sub-stream per fault class
// (transition latching, thermal throttle, counter drop, counter noise,
// DAQ dropout). Each path draws only from its own stream in
// deterministic call order, so a given (Config, workload, policy)
// triple replays the same fault sequence run after run — and the
// per-sample DAQ draws, which fire thousands of times per kernel,
// cannot shift the kernel-boundary fault sequence when the sampling
// rate or trace length changes.
package faults

import (
	"fmt"
	"math"
	"math/rand"

	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
)

// Config parameterizes the injector. All rates are per-kernel-boundary
// probabilities in [0, 1] (DAQDropRate is per DAQ sample). The zero
// value injects nothing.
type Config struct {
	// Seed fixes the pseudo-random fault sequence. The same seed with
	// the same workload and policy replays identical faults.
	Seed int64

	// CounterNoise is the standard deviation of the multiplicative
	// Gaussian noise applied to the event-derived counters the
	// controller observes (VALUBusy, MemUnitBusy, and friends). The
	// digitally latched DPM-state registers (NormCUsActive, NormCUClock,
	// NormMemClock) stay exact, as they do on real hardware.
	CounterNoise float64

	// CounterDropRate is the probability a monitoring sample is lost at
	// a kernel boundary; the controller then sees the previous delivered
	// sample again (a stale read), emulating a failed counter fetch.
	CounterDropRate float64

	// TransitionFailRate is the probability that a commanded
	// configuration change fails to latch, leaving the hardware stuck at
	// its previous operating point.
	TransitionFailRate float64
	// TransitionStick is how many kernel boundaries a failed transition
	// sticks before commands latch again. Zero means 1.
	TransitionStick int

	// ThrottleRate is the probability a transient thermal-throttle event
	// begins at a kernel boundary. While throttled, the hardware forces
	// the compute frequency ThrottleLevels grid steps below whatever is
	// commanded, exactly as PowerTune's thermal manager overrides the
	// driver (Section 2.3 of the paper).
	ThrottleRate float64
	// ThrottleLevels is how many compute-frequency levels a throttle
	// forces down. Zero means 2.
	ThrottleLevels int
	// ThrottleDuration is how many kernel boundaries a throttle lasts.
	// Zero means 3.
	ThrottleDuration int

	// DAQDropRate is the probability an individual 1 kHz power sample is
	// lost from the recorded trace (the NI card's buffer overruns on the
	// real bench; exact integrated energy is unaffected because the GPU
	// still drew the power).
	DAQDropRate float64
}

// Enabled reports whether the configuration injects any fault at all.
func (c Config) Enabled() bool {
	return c.CounterNoise > 0 || c.CounterDropRate > 0 ||
		c.TransitionFailRate > 0 || c.ThrottleRate > 0 || c.DAQDropRate > 0
}

// Scale returns a copy of the configuration with every rate and the
// noise magnitude multiplied by intensity (clamped to [0, 1] for the
// probabilities). Durations and seeds are unchanged.
func (c Config) Scale(intensity float64) Config {
	clamp01 := func(v float64) float64 { return math.Max(0, math.Min(1, v)) }
	out := c
	out.CounterNoise = c.CounterNoise * intensity
	out.CounterDropRate = clamp01(c.CounterDropRate * intensity)
	out.TransitionFailRate = clamp01(c.TransitionFailRate * intensity)
	out.ThrottleRate = clamp01(c.ThrottleRate * intensity)
	out.DAQDropRate = clamp01(c.DAQDropRate * intensity)
	return out
}

// Profile returns the canonical fault profile used by the robustness
// study: at intensity 1 it combines 20% multiplicative counter noise,
// 15% sample drop, 20% transition failure (sticking 2 boundaries), 8%
// thermal-throttle onset, and 10% DAQ dropout. Intensity scales all
// rates and the noise magnitude linearly; 0 disables everything.
func Profile(seed int64, intensity float64) Config {
	return Config{
		Seed:               seed,
		CounterNoise:       0.20,
		CounterDropRate:    0.15,
		TransitionFailRate: 0.20,
		TransitionStick:    2,
		ThrottleRate:       0.08,
		ThrottleLevels:     2,
		ThrottleDuration:   3,
		DAQDropRate:        0.10,
	}.Scale(intensity)
}

func (c Config) String() string {
	return fmt.Sprintf("faults{seed=%d noise=%.2f drop=%.2f stick=%.2f×%d throttle=%.2f daq=%.2f}",
		c.Seed, c.CounterNoise, c.CounterDropRate, c.TransitionFailRate,
		c.stick(), c.ThrottleRate, c.DAQDropRate)
}

func (c Config) stick() int {
	if c.TransitionStick <= 0 {
		return 1
	}
	return c.TransitionStick
}

func (c Config) throttleLevels() int {
	if c.ThrottleLevels <= 0 {
		return 2
	}
	return c.ThrottleLevels
}

func (c Config) throttleDuration() int {
	if c.ThrottleDuration <= 0 {
		return 3
	}
	return c.ThrottleDuration
}

// Injector applies one fault configuration to one session run. It is
// stateful (stuck transitions and throttle events span kernel
// boundaries), so construct a fresh Injector per run; runs built from
// the same Config replay the same fault sequence.
type Injector struct {
	cfg Config

	// One seeded sub-stream per fault class, all derived from cfg.Seed
	// (see subSeed). Keeping the streams separate means the number of
	// draws on one path — most importantly the per-sample daqRNG —
	// cannot perturb the sequences the other paths produce.
	transRNG    *rand.Rand // transition-latch failures
	throttleRNG *rand.Rand // thermal-throttle onsets
	dropRNG     *rand.Rand // monitoring-sample drops
	noiseRNG    *rand.Rand // counter-noise Gaussians
	daqRNG      *rand.Rand // DAQ trace-sample dropout

	haveApplied  bool
	applied      hw.Config // configuration the hardware last latched
	stickLeft    int       // boundaries the current stuck transition has left
	throttleLeft int       // boundaries the current throttle event has left

	// last delivered observation per kernel, replayed on sample drops.
	lastObs map[string]gpusim.Result

	// Event counters for reporting and tests.
	stuck, throttles, staleSamples, daqDrops int
}

// Fault-class identifiers for subSeed. The values are arbitrary but
// frozen: changing them changes every replayed fault sequence.
const (
	classTransition = 1
	classThrottle   = 2
	classDrop       = 3
	classNoise      = 4
	classDAQ        = 5
)

// subSeed derives the seed for one fault class's sub-stream from the
// injector seed using the SplitMix64 finalizer, so adjacent seeds and
// adjacent classes still yield uncorrelated streams.
func subSeed(seed int64, class uint64) int64 {
	z := uint64(seed) ^ (class * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

func stream(seed int64, class uint64) *rand.Rand {
	return rand.New(rand.NewSource(subSeed(seed, class)))
}

// New returns an injector for the given fault configuration.
func New(cfg Config) *Injector {
	return &Injector{
		cfg:         cfg,
		transRNG:    stream(cfg.Seed, classTransition),
		throttleRNG: stream(cfg.Seed, classThrottle),
		dropRNG:     stream(cfg.Seed, classDrop),
		noiseRNG:    stream(cfg.Seed, classNoise),
		daqRNG:      stream(cfg.Seed, classDAQ),
		lastObs:     make(map[string]gpusim.Result),
	}
}

// Config returns the injector's fault configuration.
func (in *Injector) Config() Config { return in.cfg }

// Stats reports how many transition failures, throttle events, stale
// monitoring samples, and dropped DAQ samples the injector produced.
func (in *Injector) Stats() (stuck, throttles, stale, daqDrops int) {
	return in.stuck, in.throttles, in.staleSamples, in.daqDrops
}

// ApplyConfig models the hardware receiving a commanded configuration at
// a kernel boundary and returns the configuration actually in effect:
// the previous operating point when a transition fails or is still
// sticking, and a thermally throttled compute frequency while a throttle
// event is active.
func (in *Injector) ApplyConfig(commanded hw.Config) hw.Config {
	actual := commanded
	switch {
	case !in.haveApplied:
		// First command of the run always latches: there is no previous
		// operating point to stick at.
		in.haveApplied = true
		in.applied = commanded
	case in.stickLeft > 0:
		in.stickLeft--
		actual = in.applied
	case commanded != in.applied && in.cfg.TransitionFailRate > 0 &&
		in.transRNG.Float64() < in.cfg.TransitionFailRate:
		in.stuck++
		in.stickLeft = in.cfg.stick() - 1
		actual = in.applied
	default:
		in.applied = commanded
	}

	// Thermal throttle overlays the latched configuration; when the
	// event ends the hardware returns to whatever is commanded.
	if in.throttleLeft > 0 {
		in.throttleLeft--
		actual = in.throttle(actual)
	} else if in.cfg.ThrottleRate > 0 && in.throttleRNG.Float64() < in.cfg.ThrottleRate {
		in.throttles++
		in.throttleLeft = in.cfg.throttleDuration() - 1
		actual = in.throttle(actual)
	}
	return actual
}

func (in *Injector) throttle(c hw.Config) hw.Config {
	t := hw.TunableCUFreq
	return t.WithLevel(c, t.LevelFor(c)-in.cfg.throttleLevels())
}

// Observation returns the monitoring sample the policy sees for the
// given true simulation result: possibly the previous sample replayed
// (counter fetch dropped), otherwise the true counters with
// multiplicative Gaussian noise on the event-derived fields. The
// DPM-state registers and the echoed configuration stay exact.
func (in *Injector) Observation(kernel string, res gpusim.Result) gpusim.Result {
	if in.cfg.CounterDropRate > 0 && in.dropRNG.Float64() < in.cfg.CounterDropRate {
		if prev, ok := in.lastObs[kernel]; ok {
			in.staleSamples++
			return prev
		}
	}
	out := res
	if sigma := in.cfg.CounterNoise; sigma > 0 {
		noisy := func(v float64) float64 { return v * (1 + sigma*in.noiseRNG.NormFloat64()) }
		pct := func(v float64) float64 { return math.Max(0, math.Min(100, noisy(v))) }
		frac := func(v float64) float64 { return math.Max(0, math.Min(1, noisy(v))) }
		cs := out.Counters
		cs.VALUBusy = pct(cs.VALUBusy)
		cs.VALUUtilization = pct(cs.VALUUtilization)
		cs.MemUnitBusy = pct(cs.MemUnitBusy)
		cs.MemUnitStalled = pct(cs.MemUnitStalled)
		cs.WriteUnitStalled = pct(cs.WriteUnitStalled)
		cs.ICActivity = frac(cs.ICActivity)
		cs.L2HitRate = frac(cs.L2HitRate)
		cs.Occupancy = frac(cs.Occupancy)
		cs.VALUInsts = math.Max(0, noisy(cs.VALUInsts))
		cs.VFetchInsts = math.Max(0, noisy(cs.VFetchInsts))
		cs.VWriteInsts = math.Max(0, noisy(cs.VWriteInsts))
		out.Counters = cs
	}
	in.lastObs[kernel] = out
	return out
}

// DropDAQSample reports whether the next DAQ sample is lost from the
// recorded trace. It is wired into the recorder's drop hook.
func (in *Injector) DropDAQSample() bool {
	if in.cfg.DAQDropRate <= 0 || in.daqRNG.Float64() >= in.cfg.DAQDropRate {
		return false
	}
	in.daqDrops++
	return true
}

func (in *Injector) String() string {
	return fmt.Sprintf("injector(%v: %d stuck, %d throttles, %d stale, %d daq drops)",
		in.cfg, in.stuck, in.throttles, in.staleSamples, in.daqDrops)
}
