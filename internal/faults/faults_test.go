package faults

import (
	"math"
	"testing"

	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/workloads"
)

func sampleResult(t *testing.T, cfg hw.Config) gpusim.Result {
	t.Helper()
	k := workloads.AllKernels()[0]
	return gpusim.Default().Run(k, 0, cfg)
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	in := New(Config{Seed: 1})
	cfg := hw.MaxConfig()
	res := sampleResult(t, cfg)
	for i := 0; i < 200; i++ {
		if got := in.ApplyConfig(cfg); got != cfg {
			t.Fatalf("ApplyConfig perturbed a clean run: %v", got)
		}
		if got := in.Observation("k", res); got != res {
			t.Fatalf("Observation perturbed a clean run")
		}
		if in.DropDAQSample() {
			t.Fatal("DropDAQSample fired with zero config")
		}
	}
	if !((Config{CounterNoise: 0.1}).Enabled()) || (Config{Seed: 9}).Enabled() {
		t.Error("Enabled misreports")
	}
}

func TestSeedDeterminism(t *testing.T) {
	run := func() ([]hw.Config, []float64, []bool) {
		in := New(Profile(42, 1))
		var cfgs []hw.Config
		var vb []float64
		var drops []bool
		cfg := hw.MaxConfig()
		for i := 0; i < 100; i++ {
			cmd := hw.TunableMemFreq.WithLevel(cfg, i%7)
			actual := in.ApplyConfig(cmd)
			cfgs = append(cfgs, actual)
			obs := in.Observation("k", sampleResult(t, actual))
			vb = append(vb, obs.Counters.VALUBusy)
			drops = append(drops, in.DropDAQSample())
		}
		return cfgs, vb, drops
	}
	c1, v1, d1 := run()
	c2, v2, d2 := run()
	for i := range c1 {
		if c1[i] != c2[i] || v1[i] != v2[i] || d1[i] != d2[i] {
			t.Fatalf("replay diverged at %d: %v/%v %v/%v %v/%v",
				i, c1[i], c2[i], v1[i], v2[i], d1[i], d2[i])
		}
	}
}

func TestTransitionSticksAtPreviousConfig(t *testing.T) {
	in := New(Config{Seed: 7, TransitionFailRate: 1, TransitionStick: 3})
	a := hw.MaxConfig()
	b := hw.TunableCUFreq.WithLevel(a, 2)

	if got := in.ApplyConfig(a); got != a {
		t.Fatalf("first command must latch, got %v", got)
	}
	// The commanded change fails and sticks for 3 boundaries total.
	for i := 0; i < 3; i++ {
		if got := in.ApplyConfig(b); got != a {
			t.Fatalf("boundary %d: want stuck at %v, got %v", i, a, got)
		}
	}
	// With rate 1 every subsequent change attempt fails again, but a
	// command equal to the latched config always "succeeds".
	if got := in.ApplyConfig(a); got != a {
		t.Fatalf("no-op command perturbed: %v", got)
	}
	stuck, _, _, _ := in.Stats()
	if stuck != 1 {
		t.Errorf("stuck events = %d, want 1", stuck)
	}
}

func TestThrottleForcesComputeFrequencyDown(t *testing.T) {
	in := New(Config{Seed: 3, ThrottleRate: 1, ThrottleLevels: 2, ThrottleDuration: 2})
	cfg := hw.MaxConfig()
	want := hw.TunableCUFreq.WithLevel(cfg, hw.TunableCUFreq.Levels()-1-2)
	for i := 0; i < 5; i++ {
		got := in.ApplyConfig(cfg)
		if got != want {
			t.Fatalf("boundary %d: want throttled %v, got %v", i, want, got)
		}
		if !got.Valid() {
			t.Fatalf("throttled config invalid: %v", got)
		}
	}
	// Throttling near the floor clamps at the grid boundary.
	floor := hw.TunableCUFreq.WithLevel(cfg, 0)
	if got := in.ApplyConfig(floor); !got.Valid() || got.Compute.Freq != hw.MinCUFreq {
		t.Fatalf("floor throttle = %v", got)
	}
}

func TestStaleObservationReplaysPrevious(t *testing.T) {
	in := New(Config{Seed: 11, CounterDropRate: 1})
	cfg := hw.MaxConfig()
	first := sampleResult(t, cfg)
	// No previous sample: the first observation passes through.
	if got := in.Observation("k", first); got != first {
		t.Fatalf("first observation must pass through")
	}
	second := sampleResult(t, hw.TunableCUFreq.WithLevel(cfg, 0))
	if got := in.Observation("k", second); got != first {
		t.Fatalf("want stale replay of first sample, got fresh")
	}
	// Other kernels have independent stale state.
	if got := in.Observation("other", second); got != second {
		t.Fatalf("stale state leaked across kernels")
	}
}

func TestCounterNoisePerturbsAndClamps(t *testing.T) {
	in := New(Config{Seed: 5, CounterNoise: 0.5})
	cfg := hw.MaxConfig()
	res := sampleResult(t, cfg)
	changed := false
	for i := 0; i < 50; i++ {
		got := in.Observation("k", res)
		cs := got.Counters
		if cs.VALUBusy != res.Counters.VALUBusy {
			changed = true
		}
		for _, v := range []float64{cs.VALUBusy, cs.MemUnitBusy, cs.VALUUtilization,
			cs.MemUnitStalled, cs.WriteUnitStalled} {
			if v < 0 || v > 100 || math.IsNaN(v) {
				t.Fatalf("percentage counter out of range: %v", v)
			}
		}
		for _, v := range []float64{cs.ICActivity, cs.L2HitRate, cs.Occupancy} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("fractional counter out of range: %v", v)
			}
		}
		// DPM-state registers are digital reads: never noisy.
		if cs.NormCUClock != res.Counters.NormCUClock ||
			cs.NormCUsActive != res.Counters.NormCUsActive ||
			cs.NormMemClock != res.Counters.NormMemClock {
			t.Fatal("noise corrupted DPM-state registers")
		}
		if got.Config != res.Config || got.Time != res.Time {
			t.Fatal("noise must not touch the true result fields")
		}
	}
	if !changed {
		t.Error("noise never perturbed VALUBusy in 50 samples")
	}
}

func TestScaleAndProfile(t *testing.T) {
	base := Profile(1, 1)
	half := Profile(1, 0.5)
	if half.CounterNoise != base.CounterNoise/2 || half.ThrottleRate != base.ThrottleRate/2 {
		t.Errorf("Profile(0.5) not linearly scaled: %+v", half)
	}
	zero := Profile(1, 0)
	if zero.Enabled() {
		t.Errorf("Profile(0) must disable everything: %+v", zero)
	}
	over := Config{CounterDropRate: 0.8}.Scale(2)
	if over.CounterDropRate != 1 {
		t.Errorf("Scale must clamp probabilities at 1, got %v", over.CounterDropRate)
	}
	if s := base.String(); s == "" {
		t.Error("empty String()")
	}
}

// TestDAQDrawsDoNotShiftKernelFaults verifies the per-class RNG
// sub-streams: interleaving any number of DAQ-dropout draws between
// kernel boundaries must leave the transition/throttle outcomes and the
// noisy observations untouched. With a single shared stream, changing
// the DAQ sampling rate (thousands of draws per kernel) would silently
// reshuffle every other fault sequence.
func TestDAQDrawsDoNotShiftKernelFaults(t *testing.T) {
	run := func(daqDrawsPerBoundary int) ([]hw.Config, []float64) {
		in := New(Profile(42, 1))
		cfg := hw.MaxConfig()
		var cfgs []hw.Config
		var vb []float64
		for i := 0; i < 100; i++ {
			cmd := hw.TunableMemFreq.WithLevel(cfg, i%7)
			actual := in.ApplyConfig(cmd)
			cfgs = append(cfgs, actual)
			obs := in.Observation("k", sampleResult(t, actual))
			vb = append(vb, obs.Counters.VALUBusy)
			for j := 0; j < daqDrawsPerBoundary; j++ {
				in.DropDAQSample()
			}
		}
		return cfgs, vb
	}
	c1, v1 := run(0)
	c2, v2 := run(37)
	for i := range c1 {
		if c1[i] != c2[i] || v1[i] != v2[i] {
			t.Fatalf("DAQ draws shifted kernel-boundary faults at %d: %v/%v %v/%v",
				i, c1[i], c2[i], v1[i], v2[i])
		}
	}
}

// TestSubSeedStreamsDistinct guards the stream derivation: every fault
// class must get its own seed, for any injector seed.
func TestSubSeedStreamsDistinct(t *testing.T) {
	for _, seed := range []int64{0, 1, -1, 42, 1 << 40} {
		seen := map[int64]uint64{}
		for class := uint64(classTransition); class <= classDAQ; class++ {
			s := subSeed(seed, class)
			if prev, dup := seen[s]; dup {
				t.Errorf("seed %d: classes %d and %d collide on sub-seed %d", seed, prev, class, s)
			}
			seen[s] = class
		}
	}
}

func TestDAQDropRate(t *testing.T) {
	in := New(Config{Seed: 13, DAQDropRate: 0.5})
	drops := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if in.DropDAQSample() {
			drops++
		}
	}
	if frac := float64(drops) / n; frac < 0.4 || frac > 0.6 {
		t.Errorf("drop fraction = %.2f, want ~0.5", frac)
	}
	_, _, _, daq := in.Stats()
	if daq != drops {
		t.Errorf("Stats daq drops = %d, want %d", daq, drops)
	}
}
