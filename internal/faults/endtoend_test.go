package faults_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"harmonia/internal/core"
	"harmonia/internal/faults"
	"harmonia/internal/sensitivity"
	"harmonia/internal/session"
	"harmonia/internal/workloads"
)

// TestSameSeedFaultRunsByteIdentical is the end-to-end replay guarantee:
// two full fault-injected sessions — adaptive Harmonia controller, every
// fault class enabled at full intensity, 1 kHz DAQ trace recorded — must
// serialize to byte-identical reports when built from the same seed.
// This exercises every injector draw path (transition latching, thermal
// throttle, counter drop, counter noise, DAQ dropout) through the real
// session loop, not just the injector in isolation: noisy observations
// feed the controller, whose decisions feed back into the fault stream.
func TestSameSeedFaultRunsByteIdentical(t *testing.T) {
	app := workloads.ByName("Graph500")
	if app == nil {
		t.Fatal("Graph500 missing from suite")
	}
	pred := sensitivity.DefaultPredictor()
	run := func() []byte {
		s := session.New(core.New(core.Options{Predictor: pred}))
		s.Faults = faults.New(faults.Profile(42, 1))
		rep, err := s.Run(app)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		limit := 200
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				lo := max(0, i-limit/2)
				t.Fatalf("same-seed runs diverge at byte %d:\n%s\nvs\n%s",
					i, a[lo:min(len(a), lo+limit)], b[lo:min(len(b), lo+limit)])
			}
		}
		t.Fatalf("same-seed runs differ in length: %d vs %d bytes", len(a), len(b))
	}
}
