package counters

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExtendedFeaturesMatchNames(t *testing.T) {
	s := validSet()
	s.NormCUsActive = 0.5
	s.NormCUClock = 0.7
	s.NormMemClock = 0.9
	feats := s.ExtendedFeatures()
	names := ExtendedFeatureNames()
	if len(feats) != len(names) {
		t.Fatalf("%d features for %d names", len(feats), len(names))
	}
	// The extended set starts with the bandwidth set...
	for i, v := range s.BandwidthFeatures() {
		if feats[i] != v {
			t.Errorf("feature %d (%s) = %v, want bandwidth value %v", i, names[i], feats[i], v)
		}
	}
	// ...and ends with the DPM-state registers and divergence impact.
	n := len(feats)
	if feats[n-4] != 0.5 || feats[n-3] != 0.7 || feats[n-2] != 0.9 {
		t.Errorf("DPM register features wrong: %v", feats[n-4:])
	}
	if feats[n-1] != s.DivergenceImpact() {
		t.Errorf("divergence impact feature = %v, want %v", feats[n-1], s.DivergenceImpact())
	}
}

func TestDivergenceImpact(t *testing.T) {
	// 40% divergence at 50% VALU busyness -> impact 20.
	s := Set{VALUUtilization: 60, VALUBusy: 50}
	if got := s.DivergenceImpact(); math.Abs(got-20) > 1e-9 {
		t.Errorf("DivergenceImpact = %v, want 20", got)
	}
	// No divergence -> zero impact regardless of busyness.
	s = Set{VALUUtilization: 100, VALUBusy: 99}
	if got := s.DivergenceImpact(); got != 0 {
		t.Errorf("DivergenceImpact = %v, want 0", got)
	}
}

func TestValuesRoundTrip(t *testing.T) {
	s := validSet()
	s.NormCUsActive, s.NormCUClock, s.NormMemClock = 0.25, 0.3, 0.4
	vs := s.Values()
	if len(vs) != len(FieldNames()) {
		t.Fatalf("%d values for %d names", len(vs), len(FieldNames()))
	}
	back, err := FromValues(vs)
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("round trip lost data: %+v vs %+v", back, s)
	}
	if _, err := FromValues(vs[:3]); err == nil {
		t.Error("short vector accepted")
	}
}

// Property: Blend(x, x, alpha) == x and Blend(a, b, 1) == b.
func TestBlendProperties(t *testing.T) {
	f := func(a, b uint8, alpha uint8) bool {
		sa := validSet()
		sa.VALUBusy = float64(a) / 255 * 100
		sb := validSet()
		sb.VALUBusy = float64(b) / 255 * 100
		sb.MemUnitBusy = 75
		w := float64(alpha) / 255
		idem := sa.Blend(sa, w)
		full := sa.Blend(sb, 1)
		if math.Abs(idem.VALUBusy-sa.VALUBusy) > 1e-9 {
			return false
		}
		// alpha = 1 lands on the new sample up to floating-point
		// rounding of a + (b - a).
		fv, bv := full.Values(), sb.Values()
		for i := range fv {
			if math.Abs(fv[i]-bv[i]) > 1e-9 {
				return false
			}
		}
		// Blend result is element-wise between the endpoints.
		mid := sa.Blend(sb, w)
		lo, hi := math.Min(sa.VALUBusy, sb.VALUBusy), math.Max(sa.VALUBusy, sb.VALUBusy)
		return mid.VALUBusy >= lo-1e-9 && mid.VALUBusy <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
