// Package counters defines the performance-counter vocabulary of the
// paper's Table 2. The GPU simulator (internal/gpusim) emits one Set per
// kernel invocation; the sensitivity predictors (internal/sensitivity)
// and Harmonia's fine-grain feedback loop consume them.
//
// All percentage-valued counters are normalized to 0..100, matching the
// paper's convention of expressing every counter "as a percentage of its
// maximum possible value" (Section 4.2).
package counters

import (
	"fmt"
	"math"

	"harmonia/internal/hw"
)

// Set is the per-kernel performance-counter sample of Table 2, plus the
// raw instruction counters used by the adaptation-behaviour analysis
// (Figure 14) and occupancy used in Section 3.5.
type Set struct {
	// VALUBusy is the percentage of GPU time the vector ALUs are issuing
	// instructions. Changes in VALUBusy are Harmonia's fine-grain
	// performance proxy (Section 5.2).
	VALUBusy float64
	// VALUUtilization is the percentage of active vector ALU threads in a
	// wave; 100 minus it indicates branch divergence.
	VALUUtilization float64
	// MemUnitBusy is the percentage of total GPU time the memory
	// fetch/read unit is active, including stalls and cache effects.
	MemUnitBusy float64
	// MemUnitStalled is the percentage of total GPU time the memory
	// fetch/read unit is stalled.
	MemUnitStalled float64
	// WriteUnitStalled is the percentage of total GPU time the memory
	// write/store unit is stalled.
	WriteUnitStalled float64
	// NormVGPR is the kernel's vector-register usage normalized by the
	// 256-register file (0..1).
	NormVGPR float64
	// NormSGPR is the kernel's scalar-register usage normalized by the
	// 102-register allocation limit (0..1).
	NormSGPR float64
	// ICActivity is the off-chip interconnect bus utilization between the
	// GPU L2 and DRAM (0..1), Eq. 1 of the paper: achieved read+write
	// DRAM bandwidth over peak bandwidth at the current memory config.
	ICActivity float64
	// L2HitRate is the fraction of L2 accesses that hit (0..1).
	L2HitRate float64
	// Occupancy is kernel occupancy: in-flight wavefronts per SIMD over
	// the architectural maximum (0..1), Section 3.5.
	Occupancy float64

	// Raw instruction counts for the whole kernel invocation (Figure 14).
	VALUInsts   float64
	VFetchInsts float64
	VWriteInsts float64

	// DPM-state registers: the hardware configuration the sample was
	// taken at, normalized to the maximum (active CUs / 32, compute
	// clock / 1 GHz, memory clock / 1375 MHz). Real platforms expose
	// these alongside the event counters; the per-tunable sensitivity
	// models use them to disentangle configuration-induced shifts in the
	// time-fraction counters from inherent kernel behaviour.
	NormCUsActive float64
	NormCUClock   float64
	NormMemClock  float64
}

// CToMIntensity returns the compute-to-memory intensity metric of Eq. 3:
// the ratio of time the vector ALU is busy processing active threads to
// the time the memory unit is busy, normalized to 100 (values are clamped
// at 100 as the paper's normalization implies a bounded metric).
func (s Set) CToMIntensity() float64 {
	if s.MemUnitBusy <= 0 {
		return 100
	}
	v := (s.VALUBusy * s.VALUUtilization / 100) / s.MemUnitBusy * 100
	return math.Min(v, 100)
}

// BranchDivergence returns the percentage of inactive vector lanes,
// 100 - VALUUtilization, the quantity plotted in Figure 8.
func (s Set) BranchDivergence() float64 { return 100 - s.VALUUtilization }

// OpsPerByte returns the demanded operational intensity of the kernel:
// executed vector operations per byte of DRAM traffic, using the
// wavefront-width and cache-line constants of the platform. It is the
// application-side counterpart of hw.Config.OpsPerByte.
func (s Set) OpsPerByte(dramBytes float64) float64 {
	if dramBytes <= 0 {
		return math.Inf(1)
	}
	return s.VALUInsts * hw.WavefrontSize / dramBytes
}

// Feature names used by the sensitivity models, in the canonical order
// produced by Features.
const (
	FeatVALUUtilization  = "VALUUtilization"
	FeatWriteUnitStalled = "WriteUnitStalled"
	FeatMemUnitBusy      = "MemUnitBusy"
	FeatMemUnitStalled   = "MemUnitStalled"
	FeatICActivity       = "icActivity"
	FeatNormVGPR         = "NormVGPR"
	FeatNormSGPR         = "NormSGPR"
	FeatCToMIntensity    = "C-to-M Intensity"
)

// BandwidthFeatureNames lists the regressors of the paper's bandwidth
// sensitivity model (Table 3), in order.
func BandwidthFeatureNames() []string {
	return []string{
		FeatVALUUtilization, FeatWriteUnitStalled, FeatMemUnitBusy,
		FeatMemUnitStalled, FeatICActivity, FeatNormVGPR, FeatNormSGPR,
	}
}

// ComputeFeatureNames lists the regressors of the paper's compute
// throughput sensitivity model (Table 3), in order.
func ComputeFeatureNames() []string {
	return []string{FeatCToMIntensity, FeatNormVGPR, FeatNormSGPR}
}

// Extended feature names for the per-tunable CU and CU-frequency models:
// the bandwidth set plus the compute-side signals Section 3.5 identifies
// (C-to-M intensity, raw VALU busyness, and kernel occupancy).
const (
	FeatVALUBusy         = "VALUBusy"
	FeatOccupancy        = "Occupancy"
	FeatNormCUsActive    = "NormCUsActive"
	FeatNormCUClock      = "NormCUClock"
	FeatNormMemClock     = "NormMemClock"
	FeatDivergenceImpact = "DivergenceImpact"
)

// ExtendedFeatureNames lists the regressors of the per-tunable compute
// sensitivity models, in order.
func ExtendedFeatureNames() []string {
	return append(BandwidthFeatureNames(),
		FeatCToMIntensity, FeatVALUBusy, FeatOccupancy,
		FeatNormCUsActive, FeatNormCUClock, FeatNormMemClock,
		FeatDivergenceImpact)
}

// BandwidthFeatures extracts the bandwidth-model feature vector in the
// order of BandwidthFeatureNames.
func (s Set) BandwidthFeatures() []float64 {
	return []float64{
		s.VALUUtilization, s.WriteUnitStalled, s.MemUnitBusy,
		s.MemUnitStalled, s.ICActivity, s.NormVGPR, s.NormSGPR,
	}
}

// ComputeFeatures extracts the compute-model feature vector in the order
// of ComputeFeatureNames.
func (s Set) ComputeFeatures() []float64 {
	return []float64{s.CToMIntensity(), s.NormVGPR, s.NormSGPR}
}

// ExtendedFeatures extracts the per-tunable compute-model feature vector
// in the order of ExtendedFeatureNames.
func (s Set) ExtendedFeatures() []float64 {
	return append(s.BandwidthFeatures(),
		s.CToMIntensity(), s.VALUBusy, s.Occupancy,
		s.NormCUsActive, s.NormCUClock, s.NormMemClock,
		s.DivergenceImpact())
}

// DivergenceImpact is the Section 3.5 insight that control divergence
// matters in proportion to how much vector issue the kernel actually
// does: large divergence in tiny kernels has little effect, small
// divergence across millions of instructions serializes heavily. It is
// the product of branch divergence and VALU busyness (0..100).
func (s Set) DivergenceImpact() float64 {
	return s.BranchDivergence() * s.VALUBusy / 100
}

// FieldNames returns the canonical ordering of every counter in a Set,
// for tools (profilers, exporters) that treat samples as vectors.
func FieldNames() []string {
	return []string{
		"VALUBusy", "VALUUtilization", "MemUnitBusy", "MemUnitStalled",
		"WriteUnitStalled", "NormVGPR", "NormSGPR", "icActivity",
		"L2HitRate", "Occupancy", "VALUInsts", "VFetchInsts",
		"VWriteInsts", "NormCUsActive", "NormCUClock", "NormMemClock",
	}
}

// Values returns every counter in FieldNames order.
func (s Set) Values() []float64 {
	return []float64{
		s.VALUBusy, s.VALUUtilization, s.MemUnitBusy, s.MemUnitStalled,
		s.WriteUnitStalled, s.NormVGPR, s.NormSGPR, s.ICActivity,
		s.L2HitRate, s.Occupancy, s.VALUInsts, s.VFetchInsts,
		s.VWriteInsts, s.NormCUsActive, s.NormCUClock, s.NormMemClock,
	}
}

// FromValues reconstructs a Set from a vector in FieldNames order.
func FromValues(vs []float64) (Set, error) {
	if len(vs) != len(FieldNames()) {
		return Set{}, fmt.Errorf("counters: %d values, want %d", len(vs), len(FieldNames()))
	}
	return Set{
		VALUBusy: vs[0], VALUUtilization: vs[1], MemUnitBusy: vs[2],
		MemUnitStalled: vs[3], WriteUnitStalled: vs[4], NormVGPR: vs[5],
		NormSGPR: vs[6], ICActivity: vs[7], L2HitRate: vs[8],
		Occupancy: vs[9], VALUInsts: vs[10], VFetchInsts: vs[11],
		VWriteInsts: vs[12], NormCUsActive: vs[13], NormCUClock: vs[14],
		NormMemClock: vs[15],
	}, nil
}

// Average returns the element-wise mean of the sets. The paper replaces
// each counter with its average across all hardware configurations when
// building the training set (Section 4.2). Average of no sets is zero.
func Average(sets []Set) Set {
	var out Set
	if len(sets) == 0 {
		return out
	}
	n := float64(len(sets))
	for _, s := range sets {
		out.VALUBusy += s.VALUBusy / n
		out.VALUUtilization += s.VALUUtilization / n
		out.MemUnitBusy += s.MemUnitBusy / n
		out.MemUnitStalled += s.MemUnitStalled / n
		out.WriteUnitStalled += s.WriteUnitStalled / n
		out.NormVGPR += s.NormVGPR / n
		out.NormSGPR += s.NormSGPR / n
		out.ICActivity += s.ICActivity / n
		out.L2HitRate += s.L2HitRate / n
		out.Occupancy += s.Occupancy / n
		out.VALUInsts += s.VALUInsts / n
		out.VFetchInsts += s.VFetchInsts / n
		out.VWriteInsts += s.VWriteInsts / n
		out.NormCUsActive += s.NormCUsActive / n
		out.NormCUClock += s.NormCUClock / n
		out.NormMemClock += s.NormMemClock / n
	}
	return out
}

// Blend returns (1-alpha)·s + alpha·next, element-wise: an exponential
// moving average step. Harmonia's monitoring block smooths counters over
// a kernel's successive invocations this way, implementing the paper's
// use of "each kernel's historical data from previous iterations"
// (Section 5.1) and damping configuration-induced counter shifts.
func (s Set) Blend(next Set, alpha float64) Set {
	lerp := func(a, b float64) float64 { return a + alpha*(b-a) }
	return Set{
		VALUBusy:         lerp(s.VALUBusy, next.VALUBusy),
		VALUUtilization:  lerp(s.VALUUtilization, next.VALUUtilization),
		MemUnitBusy:      lerp(s.MemUnitBusy, next.MemUnitBusy),
		MemUnitStalled:   lerp(s.MemUnitStalled, next.MemUnitStalled),
		WriteUnitStalled: lerp(s.WriteUnitStalled, next.WriteUnitStalled),
		NormVGPR:         lerp(s.NormVGPR, next.NormVGPR),
		NormSGPR:         lerp(s.NormSGPR, next.NormSGPR),
		ICActivity:       lerp(s.ICActivity, next.ICActivity),
		L2HitRate:        lerp(s.L2HitRate, next.L2HitRate),
		Occupancy:        lerp(s.Occupancy, next.Occupancy),
		VALUInsts:        lerp(s.VALUInsts, next.VALUInsts),
		VFetchInsts:      lerp(s.VFetchInsts, next.VFetchInsts),
		VWriteInsts:      lerp(s.VWriteInsts, next.VWriteInsts),
		NormCUsActive:    lerp(s.NormCUsActive, next.NormCUsActive),
		NormCUClock:      lerp(s.NormCUClock, next.NormCUClock),
		NormMemClock:     lerp(s.NormMemClock, next.NormMemClock),
	}
}

// Validate reports the first out-of-range counter, or nil. Percentages
// must lie in [0, 100]; fractions in [0, 1]; counts must be non-negative.
func (s Set) Validate() error {
	pct := map[string]float64{
		"VALUBusy": s.VALUBusy, "VALUUtilization": s.VALUUtilization,
		"MemUnitBusy": s.MemUnitBusy, "MemUnitStalled": s.MemUnitStalled,
		"WriteUnitStalled": s.WriteUnitStalled,
	}
	for name, v := range pct {
		// A small tolerance absorbs floating-point accumulation from
		// Average over thousands of samples.
		if v < 0 || v > 100+1e-6 || math.IsNaN(v) {
			return fmt.Errorf("counters: %s = %v out of [0,100]", name, v)
		}
	}
	frac := map[string]float64{
		"NormVGPR": s.NormVGPR, "NormSGPR": s.NormSGPR,
		"icActivity": s.ICActivity, "L2HitRate": s.L2HitRate,
		"Occupancy": s.Occupancy, "NormCUsActive": s.NormCUsActive,
		"NormCUClock": s.NormCUClock, "NormMemClock": s.NormMemClock,
	}
	for name, v := range frac {
		if v < 0 || v > 1.0001 || math.IsNaN(v) {
			return fmt.Errorf("counters: %s = %v out of [0,1]", name, v)
		}
	}
	counts := map[string]float64{
		"VALUInsts": s.VALUInsts, "VFetchInsts": s.VFetchInsts, "VWriteInsts": s.VWriteInsts,
	}
	for name, v := range counts {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("counters: %s = %v negative", name, v)
		}
	}
	return nil
}

// Description holds the human-readable documentation of one Table 2 entry,
// used by the Table 2 experiment regenerator.
type Description struct {
	Name string
	Text string
}

// Table2 returns the paper's Table 2: the counters and derived metrics the
// sensitivity predictors use, with their published descriptions.
func Table2() []Description {
	return []Description{
		{FeatVALUUtilization, "Percentage of active vector ALU threads in a wave, indicates branch divergence"},
		{FeatMemUnitBusy, "Percentage of total GPU time the memory fetch/read unit is active, including stalls and cache effects"},
		{FeatMemUnitStalled, "Percentage of total GPU time the memory fetch/read unit is stalled"},
		{FeatWriteUnitStalled, "Percentage of total GPU time memory write/store unit is stalled"},
		{FeatNormVGPR, "Number of general purpose vector registers used by the kernel, normalized by max 256"},
		{FeatNormSGPR, "Number of general purpose scalar registers used by the kernel, normalized by max 102"},
		{FeatICActivity, "Off-chip interconnect bus utilization between GPU L2 and DRAM"},
		{FeatCToMIntensity, "Ratio of the time the vector ALU unit is busy processing active threads (VALUBusy*VALUUtilization) to the time the memory unit is busy (MemUnitBusy), normalized to 100"},
	}
}
