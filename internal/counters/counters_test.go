package counters

import (
	"math"
	"testing"
	"testing/quick"
)

func validSet() Set {
	return Set{
		VALUBusy: 60, VALUUtilization: 90, MemUnitBusy: 40,
		MemUnitStalled: 10, WriteUnitStalled: 5,
		NormVGPR: 0.25, NormSGPR: 0.3, ICActivity: 0.5,
		L2HitRate: 0.4, Occupancy: 0.7,
		VALUInsts: 1e6, VFetchInsts: 2e5, VWriteInsts: 1e5,
	}
}

func TestCToMIntensity(t *testing.T) {
	s := validSet()
	// (60 * 90/100) / 40 * 100 = 135 -> clamped to 100.
	if got := s.CToMIntensity(); got != 100 {
		t.Errorf("CToMIntensity = %v, want clamped 100", got)
	}
	s.MemUnitBusy = 80
	// (60*0.9)/80*100 = 67.5
	if got := s.CToMIntensity(); math.Abs(got-67.5) > 1e-9 {
		t.Errorf("CToMIntensity = %v, want 67.5", got)
	}
	s.MemUnitBusy = 0
	if got := s.CToMIntensity(); got != 100 {
		t.Errorf("CToMIntensity with idle memory = %v, want 100", got)
	}
}

func TestBranchDivergence(t *testing.T) {
	s := Set{VALUUtilization: 94}
	if got := s.BranchDivergence(); math.Abs(got-6) > 1e-9 {
		t.Errorf("BranchDivergence = %v, want 6", got)
	}
}

func TestOpsPerByte(t *testing.T) {
	s := Set{VALUInsts: 1000}
	// 1000 wavefront insts x 64 lanes / 64000 bytes = 1 op/byte.
	if got := s.OpsPerByte(64000); math.Abs(got-1) > 1e-12 {
		t.Errorf("OpsPerByte = %v, want 1", got)
	}
	if got := s.OpsPerByte(0); !math.IsInf(got, 1) {
		t.Errorf("OpsPerByte(0) = %v, want +Inf", got)
	}
}

func TestFeatureVectorsMatchNames(t *testing.T) {
	s := validSet()
	if got, want := len(s.BandwidthFeatures()), len(BandwidthFeatureNames()); got != want {
		t.Errorf("bandwidth features %d names %d", got, want)
	}
	if got, want := len(s.ComputeFeatures()), len(ComputeFeatureNames()); got != want {
		t.Errorf("compute features %d names %d", got, want)
	}
	// Spot-check ordering against Table 3's row order.
	bf := s.BandwidthFeatures()
	if bf[0] != s.VALUUtilization || bf[4] != s.ICActivity || bf[6] != s.NormSGPR {
		t.Errorf("bandwidth feature order wrong: %v", bf)
	}
	cf := s.ComputeFeatures()
	if cf[0] != s.CToMIntensity() || cf[1] != s.NormVGPR {
		t.Errorf("compute feature order wrong: %v", cf)
	}
}

func TestAverage(t *testing.T) {
	a := Set{VALUBusy: 10, NormVGPR: 0.2, VALUInsts: 100}
	b := Set{VALUBusy: 30, NormVGPR: 0.4, VALUInsts: 300}
	avg := Average([]Set{a, b})
	if math.Abs(avg.VALUBusy-20) > 1e-9 || math.Abs(avg.NormVGPR-0.3) > 1e-9 || math.Abs(avg.VALUInsts-200) > 1e-9 {
		t.Errorf("Average = %+v", avg)
	}
	if got := Average(nil); got != (Set{}) {
		t.Errorf("Average(nil) = %+v, want zero", got)
	}
}

// Property: averaging N copies of the same set returns that set.
func TestAverageIdempotentProperty(t *testing.T) {
	f := func(busy uint8, n uint8) bool {
		s := validSet()
		s.VALUBusy = float64(busy) / 255 * 100
		count := int(n%7) + 1
		sets := make([]Set, count)
		for i := range sets {
			sets[i] = s
		}
		avg := Average(sets)
		return math.Abs(avg.VALUBusy-s.VALUBusy) < 1e-9 &&
			math.Abs(avg.Occupancy-s.Occupancy) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	if err := validSet().Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	bad := validSet()
	bad.VALUBusy = 150
	if err := bad.Validate(); err == nil {
		t.Error("VALUBusy=150 accepted")
	}
	bad = validSet()
	bad.NormVGPR = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("negative NormVGPR accepted")
	}
	bad = validSet()
	bad.VALUInsts = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative VALUInsts accepted")
	}
	bad = validSet()
	bad.Occupancy = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Error("NaN occupancy accepted")
	}
}

func TestTable2Complete(t *testing.T) {
	rows := Table2()
	if len(rows) != 8 {
		t.Fatalf("Table 2 has %d rows, want 8", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		if r.Name == "" || r.Text == "" {
			t.Errorf("incomplete Table 2 row: %+v", r)
		}
		names[r.Name] = true
	}
	for _, want := range append(BandwidthFeatureNames(), ComputeFeatureNames()...) {
		if !names[want] {
			t.Errorf("Table 2 missing model feature %q", want)
		}
	}
}
