package export

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"harmonia/internal/experiments"
	"harmonia/internal/hw"
	"harmonia/internal/metrics"
	"harmonia/internal/policy"
	"harmonia/internal/session"
	"harmonia/internal/workloads"
)

func sampleReport(t *testing.T) *session.Report {
	t.Helper()
	rep, err := session.New(policy.NewBaseline()).Run(workloads.XSBench())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := sampleReport(t)
	var buf bytes.Buffer
	if err := WriteReportJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var decoded ReportJSON
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded.App != "XSBench" || decoded.Policy != "baseline" {
		t.Errorf("identity lost: %s/%s", decoded.App, decoded.Policy)
	}
	if len(decoded.Runs) != len(rep.Runs) {
		t.Errorf("runs = %d, want %d", len(decoded.Runs), len(rep.Runs))
	}
	if decoded.EnergyJ != rep.TotalEnergy() || decoded.ED2 != rep.ED2() {
		t.Error("metrics lost in serialization")
	}
	sum := decoded.Rails.GPU + decoded.Rails.Mem + decoded.Rails.Other
	if sum != rep.TotalEnergy() {
		t.Errorf("rail energies %v != total %v", sum, rep.TotalEnergy())
	}
}

func TestRunsCSVShape(t *testing.T) {
	rep := sampleReport(t)
	var buf bytes.Buffer
	if err := WriteRunsCSV(&buf, rep); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	if len(records) != len(rep.Runs)+1 {
		t.Fatalf("got %d records, want %d", len(records), len(rep.Runs)+1)
	}
	if records[0][0] != "kernel" || len(records[0]) != 9 {
		t.Errorf("header = %v", records[0])
	}
	if records[1][0] != rep.Runs[0].Kernel {
		t.Errorf("first row kernel = %v", records[1][0])
	}
}

func TestTraceCSV(t *testing.T) {
	rep := sampleReport(t)
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, rep.Trace); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	if len(records) != len(rep.Trace)+1 {
		t.Fatalf("got %d records, want %d", len(records), len(rep.Trace)+1)
	}
	if strings.Join(records[0], ",") != "time_s,gpu_w,mem_w,other_w,card_w" {
		t.Errorf("header = %v", records[0])
	}
}

func TestTraceJSONMatchesCSV(t *testing.T) {
	rep := sampleReport(t)
	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, rep.Trace); err != nil {
		t.Fatal(err)
	}
	var decoded []TraceSampleJSON
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded) != len(rep.Trace) {
		t.Fatalf("got %d samples, want %d", len(decoded), len(rep.Trace))
	}
	for i, s := range rep.Trace {
		if decoded[i].TimeS != s.TimeS || decoded[i].CardW != s.Rails.Card() {
			t.Fatalf("sample %d = %+v, want t=%v card=%v", i, decoded[i], s.TimeS, s.Rails.Card())
		}
	}
}

func TestResultsJSON(t *testing.T) {
	// Build a small synthetic result set to avoid the full sweep.
	rs := []experiments.AppResult{
		{
			App:      "Fake",
			Baseline: metrics.Sample{Seconds: 1, Watts: 200},
			CG:       metrics.Sample{Seconds: 1.02, Watts: 180},
			Harmonia: metrics.Sample{Seconds: 1.0, Watts: 176},
			Oracle:   metrics.Sample{Seconds: 0.99, Watts: 174},
			ComputeOnly: metrics.Sample{
				Seconds: 1.0, Watts: 196,
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteResultsJSON(&buf, rs); err != nil {
		t.Fatal(err)
	}
	var decoded ResultsJSON
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded.Apps) != 1 || decoded.Apps[0].App != "Fake" {
		t.Fatalf("apps = %+v", decoded.Apps)
	}
	// 176W at equal time = 12% ED2 gain.
	if got := decoded.Apps[0].ED2Harmonia; got < 0.11 || got > 0.13 {
		t.Errorf("ED2 gain = %v, want ~0.12", got)
	}
	if decoded.Summary.BestApp != "Fake" {
		t.Errorf("summary best app = %q", decoded.Summary.BestApp)
	}
}

func TestResidencyCSVSorted(t *testing.T) {
	var buf bytes.Buffer
	res := map[int]float64{1375: 0.5, 475: 0.25, 925: 0.25}
	if err := WriteResidencyCSV(&buf, hw.TunableMemFreq, res); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 {
		t.Fatalf("records = %v", records)
	}
	if records[0][0] != "MemFreq" {
		t.Errorf("header = %v", records[0])
	}
	if records[1][0] != "475" || records[2][0] != "925" || records[3][0] != "1375" {
		t.Errorf("states not sorted: %v", records)
	}
}
