// Package export serializes session reports, power traces, and
// experiment results to JSON and CSV, so downstream analysis (plotting
// the reproduced figures, diffing runs) can happen outside Go.
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"harmonia/internal/daq"
	"harmonia/internal/experiments"
	"harmonia/internal/hw"
	"harmonia/internal/session"
)

// ReportJSON is the serialized form of a session report.
type ReportJSON struct {
	App     string          `json:"app"`
	Policy  string          `json:"policy"`
	TimeS   float64         `json:"time_s"`
	EnergyJ float64         `json:"energy_j"`
	AvgW    float64         `json:"avg_power_w"`
	ED2     float64         `json:"ed2"`
	Rails   RailsJSON       `json:"rails_energy_j"`
	Runs    []KernelRunJSON `json:"runs"`
}

// RailsJSON is the per-rail energy decomposition.
type RailsJSON struct {
	GPU   float64 `json:"gpu"`
	Mem   float64 `json:"mem"`
	Other float64 `json:"other"`
}

// KernelRunJSON is one serialized kernel invocation.
type KernelRunJSON struct {
	Kernel  string  `json:"kernel"`
	Iter    int     `json:"iter"`
	CUs     int     `json:"cus"`
	CUMHz   int     `json:"cu_mhz"`
	MemMHz  int     `json:"mem_mhz"`
	TimeS   float64 `json:"time_s"`
	CardW   float64 `json:"card_w"`
	VALUPct float64 `json:"valu_busy_pct"`
	MemPct  float64 `json:"mem_busy_pct"`
}

// Report converts a session report to its serializable form.
func Report(r *session.Report) ReportJSON {
	out := ReportJSON{
		App:     r.App,
		Policy:  r.Policy,
		TimeS:   r.TotalTime(),
		EnergyJ: r.TotalEnergy(),
		AvgW:    r.AveragePower(),
		ED2:     r.ED2(),
		Rails:   RailsJSON{GPU: r.Energy.GPU, Mem: r.Energy.Mem, Other: r.Energy.Other},
	}
	for _, run := range r.Runs {
		out.Runs = append(out.Runs, KernelRunJSON{
			Kernel:  run.Kernel,
			Iter:    run.Iter,
			CUs:     run.Config.Compute.CUs,
			CUMHz:   int(run.Config.Compute.Freq),
			MemMHz:  int(run.Config.Memory.BusFreq),
			TimeS:   run.Result.Time,
			CardW:   run.Rails.Card(),
			VALUPct: run.Result.Counters.VALUBusy,
			MemPct:  run.Result.Counters.MemUnitBusy,
		})
	}
	return out
}

// WriteReportJSON writes a session report as indented JSON.
func WriteReportJSON(w io.Writer, r *session.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(Report(r)); err != nil {
		return fmt.Errorf("export: encode report: %w", err)
	}
	return nil
}

// WriteRunsCSV writes the per-invocation rows of a report as CSV with a
// header line.
func WriteRunsCSV(w io.Writer, r *session.Report) error {
	cw := csv.NewWriter(w)
	header := []string{"kernel", "iter", "cus", "cu_mhz", "mem_mhz", "time_s", "card_w", "valu_busy_pct", "mem_busy_pct"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("export: csv header: %w", err)
	}
	for _, run := range r.Runs {
		rec := []string{
			run.Kernel,
			strconv.Itoa(run.Iter),
			strconv.Itoa(run.Config.Compute.CUs),
			strconv.Itoa(int(run.Config.Compute.Freq)),
			strconv.Itoa(int(run.Config.Memory.BusFreq)),
			formatF(run.Result.Time),
			formatF(run.Rails.Card()),
			formatF(run.Result.Counters.VALUBusy),
			formatF(run.Result.Counters.MemUnitBusy),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("export: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTraceCSV writes the DAQ power-sample stream as CSV (time,
// per-rail watts, card watts) — the raw material of the paper's power
// plots.
func WriteTraceCSV(w io.Writer, trace []daq.Sample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "gpu_w", "mem_w", "other_w", "card_w"}); err != nil {
		return fmt.Errorf("export: csv header: %w", err)
	}
	for _, s := range trace {
		rec := []string{
			formatF(s.TimeS),
			formatF(s.Rails.GPU),
			formatF(s.Rails.Mem),
			formatF(s.Rails.Other),
			formatF(s.Rails.Card()),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("export: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// TraceSampleJSON is one serialized DAQ power sample.
type TraceSampleJSON struct {
	TimeS  float64 `json:"time_s"`
	GPUW   float64 `json:"gpu_w"`
	MemW   float64 `json:"mem_w"`
	OtherW float64 `json:"other_w"`
	CardW  float64 `json:"card_w"`
}

// Trace converts a DAQ power-sample stream to its serializable form.
func Trace(trace []daq.Sample) []TraceSampleJSON {
	out := make([]TraceSampleJSON, len(trace))
	for i, s := range trace {
		out[i] = TraceSampleJSON{
			TimeS:  s.TimeS,
			GPUW:   s.Rails.GPU,
			MemW:   s.Rails.Mem,
			OtherW: s.Rails.Other,
			CardW:  s.Rails.Card(),
		}
	}
	return out
}

// WriteTraceJSON writes the DAQ power-sample stream as indented JSON —
// the HTTP-API counterpart of WriteTraceCSV.
func WriteTraceJSON(w io.Writer, trace []daq.Sample) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(Trace(trace)); err != nil {
		return fmt.Errorf("export: encode trace: %w", err)
	}
	return nil
}

// ResultsJSON is the serializable form of the Figures 10-13 evaluation.
type ResultsJSON struct {
	Apps    []AppResultJSON `json:"apps"`
	Summary SummaryJSON     `json:"summary"`
}

// AppResultJSON is one application's normalized outcomes.
type AppResultJSON struct {
	App          string  `json:"app"`
	Stress       bool    `json:"stress"`
	ED2CG        float64 `json:"ed2_gain_cg"`
	ED2Harmonia  float64 `json:"ed2_gain_harmonia"`
	ED2Oracle    float64 `json:"ed2_gain_oracle"`
	SlowdownHM   float64 `json:"slowdown_harmonia"`
	PowerSaving  float64 `json:"power_saving_harmonia"`
	EnergySaving float64 `json:"energy_saving_harmonia"`
}

// SummaryJSON mirrors experiments.Summary.
type SummaryJSON struct {
	ED2CG          float64 `json:"ed2_gain_cg"`
	ED2Harmonia    float64 `json:"ed2_gain_harmonia"`
	ED2Harmonia2   float64 `json:"ed2_gain_harmonia_nonstress"`
	ED2Oracle      float64 `json:"ed2_gain_oracle"`
	ED2ComputeOnly float64 `json:"ed2_gain_compute_only"`
	PowerSaving    float64 `json:"power_saving"`
	EnergySaving   float64 `json:"energy_saving"`
	Slowdown       float64 `json:"slowdown"`
	BestApp        string  `json:"best_app"`
	BestED2        float64 `json:"best_ed2_gain"`
	OracleGap      float64 `json:"oracle_gap"`
}

// Results converts per-app experiment results to their serializable form.
func Results(rs []experiments.AppResult) ResultsJSON {
	sum := experiments.Summarize(rs)
	out := ResultsJSON{
		Summary: SummaryJSON{
			ED2CG:          sum.ED2CG,
			ED2Harmonia:    sum.ED2Harmonia,
			ED2Harmonia2:   sum.ED2Harmonia2,
			ED2Oracle:      sum.ED2Oracle,
			ED2ComputeOnly: sum.ED2ComputeOnly,
			PowerSaving:    sum.PowerSaving,
			EnergySaving:   sum.EnergySaving,
			Slowdown:       sum.SlowdownHarmonia,
			BestApp:        sum.BestED2App,
			BestED2:        sum.BestED2,
			OracleGap:      sum.OracleGapHarmonia,
		},
	}
	for _, r := range rs {
		out.Apps = append(out.Apps, AppResultJSON{
			App:          r.App,
			Stress:       r.Stress,
			ED2CG:        r.ED2Gain(r.CG),
			ED2Harmonia:  r.ED2Gain(r.Harmonia),
			ED2Oracle:    r.ED2Gain(r.Oracle),
			SlowdownHM:   r.Slowdown(r.Harmonia),
			PowerSaving:  r.PowerGain(r.Harmonia),
			EnergySaving: r.EnergyGain(r.Harmonia),
		})
	}
	return out
}

// WriteResultsJSON writes the evaluation results as indented JSON.
func WriteResultsJSON(w io.Writer, rs []experiments.AppResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(Results(rs)); err != nil {
		return fmt.Errorf("export: encode results: %w", err)
	}
	return nil
}

// WriteResidencyCSV writes a tunable's residency map as CSV.
func WriteResidencyCSV(w io.Writer, t hw.Tunable, residency map[int]float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{t.String(), "time_share"}); err != nil {
		return fmt.Errorf("export: csv header: %w", err)
	}
	states := make([]int, 0, len(residency))
	for s := range residency {
		states = append(states, s)
	}
	// Insertion sort: tiny input, no need for the sort package.
	for i := 1; i < len(states); i++ {
		for j := i; j > 0 && states[j] < states[j-1]; j-- {
			states[j], states[j-1] = states[j-1], states[j]
		}
	}
	for _, s := range states {
		if err := cw.Write([]string{strconv.Itoa(s), formatF(residency[s])}); err != nil {
			return fmt.Errorf("export: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', 9, 64) }
