package policy

import (
	"testing"

	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/power"
	"harmonia/internal/workloads"
)

func hotKernel(t *testing.T) *workloads.Kernel {
	t.Helper()
	for _, k := range workloads.AllKernels() {
		if k.Name == "MaxFlops.Main" {
			return k
		}
	}
	t.Fatal("MaxFlops.Main missing")
	return nil
}

// drivePT runs the PowerTune loop and returns the visited compute
// frequencies.
func drivePT(p *PowerTune, k *workloads.Kernel, n int) []hw.MHz {
	sim := gpusim.Default()
	var freqs []hw.MHz
	for i := 0; i < n; i++ {
		cfg := p.Decide(k.Name, i)
		freqs = append(freqs, cfg.Compute.Freq)
		p.Observe(k.Name, i, sim.Run(k, i, cfg))
	}
	return freqs
}

func TestPowerTuneBoostsWithHeadroom(t *testing.T) {
	// Section 7.1: "the baseline power management always runs at the
	// boost frequency of 1GHz for all applications" — headroom is
	// consistently available at the stock 250 W cap.
	p := NewPowerTune(power.Default())
	for _, k := range workloads.AllKernels() {
		for i, f := range drivePT(p, k, 6) {
			if f != 1000 {
				t.Fatalf("%s iter %d: freq %v, want boost 1000MHz at stock TDP", k.Name, i, f)
			}
		}
	}
}

func TestPowerTuneThrottlesUnderLowCap(t *testing.T) {
	// With a tight cap, a compute-hot kernel must be pushed down the
	// DPM ladder until power fits.
	pm := power.Default()
	p := NewPowerTuneWithTDP(pm, 120)
	k := hotKernel(t)
	freqs := drivePT(p, k, 10)
	final := freqs[len(freqs)-1]
	if final >= 1000 {
		t.Fatalf("final freq %v; expected throttling under 120W cap", final)
	}
	// The settled state must actually fit the cap.
	sim := gpusim.Default()
	cfg := p.Decide(k.Name, 10)
	r := sim.Run(k, 10, cfg)
	rails := pm.Rails(cfg, power.Activity{
		VALUBusyFrac:    r.Counters.VALUBusy / 100,
		MemUnitBusyFrac: r.Counters.MemUnitBusy / 100,
		AchievedGBs:     r.AchievedGBs,
	})
	if rails.Card() > 120*1.02 {
		t.Errorf("settled power %.1fW exceeds 120W cap", rails.Card())
	}
}

func TestPowerTuneRecoversWhenLoadDrops(t *testing.T) {
	// Throttle on a hot kernel, then observe a cold one under the same
	// name: the DPM level must climb back toward boost.
	pm := power.Default()
	p := NewPowerTuneWithTDP(pm, 150)
	hot := hotKernel(t)
	drivePT(p, hot, 6)
	throttled := p.Decide(hot.Name, 6).Compute.Freq
	if throttled >= 1000 {
		t.Skip("kernel did not throttle at this cap") // guarded elsewhere
	}
	// Feed cold observations (idle counters) for the same kernel.
	sim := gpusim.Default()
	var cold *workloads.Kernel
	for _, k := range workloads.AllKernels() {
		if k.Name == "SRAD.Prepare" {
			cold = k
		}
	}
	for i := 0; i < 6; i++ {
		cfg := p.Decide(hot.Name, i)
		r := sim.Run(cold, i, cfg)
		r.Config = cfg
		p.Observe(hot.Name, i, r)
	}
	if got := p.Decide(hot.Name, 12).Compute.Freq; got <= throttled {
		t.Errorf("freq stayed at %v after load dropped; want recovery above %v", got, throttled)
	}
}

func TestPowerTuneOnlyMovesComputeFrequency(t *testing.T) {
	p := NewPowerTuneWithTDP(power.Default(), 100)
	k := hotKernel(t)
	sim := gpusim.Default()
	for i := 0; i < 8; i++ {
		cfg := p.Decide(k.Name, i)
		if cfg.Compute.CUs != hw.MaxCUs || cfg.Memory.BusFreq != hw.MaxMemFreq {
			t.Fatalf("PowerTune moved CU count or memory: %v", cfg)
		}
		if !cfg.Valid() {
			t.Fatalf("invalid config %v", cfg)
		}
		p.Observe(k.Name, i, sim.Run(k, i, cfg))
	}
}

func TestPowerTuneLadderIsDPMTable(t *testing.T) {
	// The ladder must match Table 1's states plus boost (DPM2 snapped
	// to the 100 MHz management grid).
	want := []hw.MHz{300, 500, 900, 1000}
	if len(dpmLadder) != len(want) {
		t.Fatalf("ladder = %v", dpmLadder)
	}
	for i, f := range want {
		if dpmLadder[i] != f {
			t.Errorf("ladder[%d] = %v, want %v", i, dpmLadder[i], f)
		}
	}
}

func TestPowerTuneName(t *testing.T) {
	if got := NewPowerTune(power.Default()).Name(); got != "powertune@250W" {
		t.Errorf("Name = %q", got)
	}
}

func TestPowerTuneNilPowerModel(t *testing.T) {
	p := &PowerTune{TDPWatts: 100, level: map[string]int{}}
	p.Observe("k", 0, gpusim.Result{}) // must not panic
	if got := p.Decide("k", 0).Compute.Freq; got != 1000 {
		t.Errorf("freq = %v", got)
	}
}

var _ Policy = (*PowerTune)(nil)
