// Package policy defines the runtime power-management policy interface
// shared by the baseline PowerTune behaviour, the Harmonia controller
// (internal/core), and the oracle (internal/oracle), plus the baseline
// itself.
//
// A policy is consulted at kernel boundaries, exactly as the paper's
// implementation is: before each kernel invocation it chooses the
// hardware configuration, and after the invocation it observes the
// timing and performance counters the monitoring block sampled
// (Section 5.1).
package policy

import (
	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
)

// Policy chooses hardware configurations at kernel boundaries.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide returns the configuration to use for the given invocation
	// of the named kernel.
	Decide(kernel string, iter int) hw.Config
	// Observe reports the simulation result of the invocation that
	// Decide configured. res.Config is the configuration it ran at.
	Observe(kernel string, iter int, res gpusim.Result)
}

// Baseline is the stock power-management behaviour of the HD 7970
// (PowerTune, Section 2.3): with thermal headroom consistently available
// — as the paper observes for all its workloads — it runs every kernel
// at the 1 GHz boost state with all CUs enabled and memory at full speed.
type Baseline struct{}

// NewBaseline returns the baseline policy.
func NewBaseline() *Baseline { return &Baseline{} }

// Name implements Policy.
func (*Baseline) Name() string { return "baseline" }

// Decide implements Policy: always the maximum configuration.
func (*Baseline) Decide(string, int) hw.Config { return hw.MaxConfig() }

// Observe implements Policy: the baseline is open loop.
func (*Baseline) Observe(string, int, gpusim.Result) {}

// Fixed is a policy pinned to one configuration; useful for design-space
// exploration and as a building block in experiments.
type Fixed struct {
	Cfg hw.Config
}

// NewFixed returns a policy pinned to cfg.
func NewFixed(cfg hw.Config) *Fixed { return &Fixed{Cfg: cfg} }

// Name implements Policy.
func (f *Fixed) Name() string { return "fixed:" + f.Cfg.String() }

// Decide implements Policy.
func (f *Fixed) Decide(string, int) hw.Config { return f.Cfg }

// Observe implements Policy.
func (*Fixed) Observe(string, int, gpusim.Result) {}
