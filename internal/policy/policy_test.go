package policy

import (
	"testing"

	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
)

func TestBaseline(t *testing.T) {
	b := NewBaseline()
	if b.Name() != "baseline" {
		t.Errorf("Name = %q", b.Name())
	}
	// The baseline runs everything at the boost state (Section 7.1:
	// "the baseline power management always runs at the boost frequency
	// of 1GHz for all applications").
	for i := 0; i < 5; i++ {
		if got := b.Decide("k", i); got != hw.MaxConfig() {
			t.Fatalf("Decide = %v, want max config", got)
		}
	}
	// Observe is open loop; it must not change anything.
	b.Observe("k", 0, gpusim.Result{})
	if got := b.Decide("k", 1); got != hw.MaxConfig() {
		t.Errorf("Decide after Observe = %v", got)
	}
}

func TestFixed(t *testing.T) {
	cfg := hw.Config{
		Compute: hw.ComputeConfig{CUs: 8, Freq: 500},
		Memory:  hw.MemConfig{BusFreq: 625},
	}
	f := NewFixed(cfg)
	if got := f.Decide("a", 0); got != cfg {
		t.Errorf("Decide = %v, want %v", got, cfg)
	}
	f.Observe("a", 0, gpusim.Result{})
	if got := f.Decide("b", 7); got != cfg {
		t.Errorf("Decide after Observe = %v, want %v", got, cfg)
	}
	if f.Name() == "" || f.Name() == NewFixed(hw.MaxConfig()).Name() {
		t.Errorf("Fixed names should embed the config: %q", f.Name())
	}
}

// Compile-time interface checks.
var (
	_ Policy = (*Baseline)(nil)
	_ Policy = (*Fixed)(nil)
)
