package policy

import (
	"fmt"

	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/power"
)

// PowerTune models the HD 7970's actual baseline power manager
// (Section 2.3): it runs at the highest DPM state — including the 1 GHz
// boost — whenever there is power headroom under the board TDP, and
// steps the compute DPM state down when the measured card power exceeds
// the cap. Memory always runs at full speed; CU count is never gated
// (the stock manager has "very little power management for off-chip
// memory", Section 2.3).
//
// The paper observes that for all of its workloads thermal/power
// headroom was consistently available, so the baseline degenerates to
// the boost state — which is exactly what Baseline implements and what
// the evaluation compares against. PowerTune exists so that the
// TDP-constrained regime the paper's introduction motivates (fixed board
// power envelopes, Section 1) can be studied too: with a reduced cap it
// throttles, and the coordinated policy's advantage under a power cap
// becomes measurable.
type PowerTune struct {
	// TDPWatts is the board power cap. The HD 7970's PowerTune limit is
	// 250 W; DefaultTDP uses that.
	TDPWatts float64
	// Power estimates card power from observed activity to decide
	// headroom, standing in for the on-die power estimation PowerTune
	// performs.
	Power *power.Model

	// level is the current compute DPM level per kernel (index into
	// dpmLadder; the highest is the boost state).
	level map[string]int
}

// DefaultTDP is the HD 7970 board power limit in watts.
const DefaultTDP = 250

// dpmLadder is the compute-state ladder PowerTune moves on: the three
// published DPM states plus the boost state (Table 1 and Section 2.3),
// with DPM2's 925 MHz snapped to the 100 MHz management grid the rest of
// the system sweeps (Section 3.1).
var dpmLadder = []hw.MHz{300, 500, 900, 1000}

// NewPowerTune returns the TDP-constrained baseline with the stock cap.
func NewPowerTune(pm *power.Model) *PowerTune {
	return &PowerTune{TDPWatts: DefaultTDP, Power: pm, level: make(map[string]int)}
}

// NewPowerTuneWithTDP returns a PowerTune manager with a custom cap.
func NewPowerTuneWithTDP(pm *power.Model, tdpWatts float64) *PowerTune {
	return &PowerTune{TDPWatts: tdpWatts, Power: pm, level: make(map[string]int)}
}

// Name implements Policy.
func (p *PowerTune) Name() string {
	return fmt.Sprintf("powertune@%gW", p.TDPWatts)
}

func (p *PowerTune) levelOf(kernel string) int {
	if lvl, ok := p.level[kernel]; ok {
		return lvl
	}
	top := len(dpmLadder) - 1
	p.level[kernel] = top
	return top
}

// Decide implements Policy: all CUs, full memory, compute frequency at
// the kernel's current DPM level.
func (p *PowerTune) Decide(kernel string, _ int) hw.Config {
	return hw.Config{
		Compute: hw.ComputeConfig{CUs: hw.MaxCUs, Freq: dpmLadder[p.levelOf(kernel)]},
		Memory:  hw.MemConfig{BusFreq: hw.MaxMemFreq},
	}
}

// Observe implements Policy: estimate card power at the observed
// activity; above the cap, step the DPM level down; with comfortable
// headroom, step back up toward boost.
func (p *PowerTune) Observe(kernel string, _ int, res gpusim.Result) {
	if p.Power == nil {
		return
	}
	rails := p.Power.Rails(res.Config, power.Activity{
		VALUBusyFrac:    res.Counters.VALUBusy / 100,
		MemUnitBusyFrac: res.Counters.MemUnitBusy / 100,
		AchievedGBs:     res.AchievedGBs,
	})
	lvl := p.levelOf(kernel)
	switch {
	case rails.Card() > p.TDPWatts && lvl > 0:
		p.level[kernel] = lvl - 1
	case rails.Card() < p.TDPWatts*headroomFrac && lvl < len(dpmLadder)-1:
		p.level[kernel] = lvl + 1
	}
}

// headroomFrac is the fraction of TDP below which PowerTune re-raises
// the DPM state. The gap between it and 1.0 provides hysteresis so the
// state does not flap when power sits at the cap.
const headroomFrac = 0.92
