package eventsim

import (
	"math"

	"harmonia/internal/counters"
	"harmonia/internal/hw"
	"harmonia/internal/workloads"
)

// Counters derives the Table 2 performance-counter sample from an
// event-simulated run, so the event simulator can stand in for the
// interval model as the platform under a power-management policy. The
// time-fraction counters come from the event loop's own accounting
// (issue slots, stall cycles, memory-system busy cycles); the static
// ones (registers, occupancy) from the kernel descriptor.
func (r Result) Counters(k *workloads.Kernel, iter int, cfg hw.Config) counters.Set {
	phase := k.PhaseFor(iter)
	div := k.DivergenceFor(phase)
	util := 1 - div
	if util < 1e-3 {
		util = 1e-3
	}
	nSIMD := float64(cfg.Compute.CUs * hw.SIMDsPerCU)
	cycles := float64(r.Cycles)
	clampPct := func(v float64) float64 { return math.Max(0, math.Min(100, v)) }

	valuBusy := 0.0
	memBusy := 0.0
	stalled := 0.0
	if cycles > 0 && nSIMD > 0 {
		valuBusy = clampPct(float64(r.IssueSlots) * float64(DefaultParams().IssueCyclesPerVALU) / (nSIMD * cycles) * 100)
		// Service-time fraction, mirroring the interval model's
		// MemUnitBusy = Tmem/T semantics.
		memBusy = clampPct(r.ServiceCycles / cycles * 100)
		stalled = clampPct(float64(r.StallCycles) / (nSIMD * cycles) * 100)
	}
	peakBW := cfg.Memory.BandwidthGBs()
	ic := 0.0
	if peakBW > 0 {
		ic = math.Max(0, math.Min(1, r.AchievedGBs()/peakBW))
	}

	return counters.Set{
		VALUBusy:         valuBusy,
		VALUUtilization:  clampPct(util * 100),
		MemUnitBusy:      memBusy,
		MemUnitStalled:   stalled,
		WriteUnitStalled: clampPct(stalled * 0.2),
		NormVGPR:         math.Min(float64(k.VGPRs)/hw.VGPRsPerSIMD, 1),
		NormSGPR:         math.Min(float64(k.SGPRs)/hw.MaxSGPRsPerWave, 1),
		ICActivity:       ic,
		L2HitRate:        effectiveL2Hit(k, cfg.Compute.CUs),
		Occupancy:        k.Occupancy(),
		VALUInsts:        float64(r.IssueSlots),
		VFetchInsts:      math.Max(1, float64(r.Waves)*k.FetchPerWI*phase.FetchScale),
		VWriteInsts:      math.Max(1, float64(r.Waves)*k.WritePerWI),
		NormCUsActive:    float64(cfg.Compute.CUs) / hw.MaxCUs,
		NormCUClock:      cfg.Compute.Freq.GHz() / hw.MaxCUFreq.GHz(),
		NormMemClock:     float64(cfg.Memory.BusFreq) / float64(hw.MaxMemFreq),
	}
}

// AsGPUSimResult adapts an event-simulated run to the gpusim.Result shape
// a policy.Policy observes, allowing any policy in this repository to run
// against the event-driven machine.
func (r Result) AsGPUSimResult(k *workloads.Kernel, iter int, cfg hw.Config) ResultAdapter {
	return ResultAdapter{
		Time:        r.Time,
		Counters:    r.Counters(k, iter, cfg),
		DRAMBytes:   r.DRAMBytes,
		AchievedGBs: r.AchievedGBs(),
		Config:      cfg,
	}
}

// ResultAdapter mirrors the fields of gpusim.Result that policies
// consume. (Defined locally to keep eventsim independent of gpusim; the
// session-level glue converts between them.)
type ResultAdapter struct {
	Time        float64
	Counters    counters.Set
	DRAMBytes   float64
	AchievedGBs float64
	Config      hw.Config
}
