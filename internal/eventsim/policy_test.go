package eventsim

import (
	"math"
	"testing"

	"harmonia/internal/core"
	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/sensitivity"
	"harmonia/internal/workloads"
)

// adapt converts an event-simulated run into the gpusim.Result shape the
// controller observes.
func adapt(r Result, k *workloads.Kernel, iter int, cfg hw.Config) gpusim.Result {
	a := r.AsGPUSimResult(k, iter, cfg)
	return gpusim.Result{
		Time:        a.Time,
		Counters:    a.Counters,
		DRAMBytes:   a.DRAMBytes,
		AchievedGBs: a.AchievedGBs,
		Config:      a.Config,
	}
}

// TestHarmoniaControllerOnEventSim is the strongest validation in the
// repository: the controller — whose sensitivity predictor was trained
// entirely on the *interval* model — manages kernels executing on the
// *event-driven* machine. If the policy's decisions transfer (power
// saved, performance essentially held), its logic depends on the
// physics both simulators share rather than on the interval model's
// specific numbers. This is the same portability argument the paper
// makes for real platforms in Section 4.3.
func TestHarmoniaControllerOnEventSim(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle-driven run")
	}
	pred, err := sensitivity.Train(
		sensitivity.BuildConfigTrainingSet(gpusim.Default(), workloads.AllKernels()))
	if err != nil {
		t.Fatal(err)
	}
	ev := New()

	cases := []struct {
		kernel string
		iters  int
		grid   int
		// what the converged configuration must look like
		check func(t *testing.T, cfg hw.Config)
	}{
		{
			kernel: "MaxFlops.Main", iters: 16, grid: 260,
			check: func(t *testing.T, cfg hw.Config) {
				if cfg.Compute.CUs != hw.MaxCUs || cfg.Compute.Freq != hw.MaxCUFreq {
					t.Errorf("compute not pinned: %v", cfg)
				}
				if cfg.Memory.BusFreq > 775 {
					t.Errorf("memory not reduced: %v", cfg)
				}
			},
		},
		{
			kernel: "Sort.BottomScan", iters: 25, grid: grid,
			check: func(t *testing.T, cfg hw.Config) {
				if cfg.Memory.BusFreq > 775 {
					t.Errorf("memory not reduced for BottomScan: %v", cfg)
				}
				if cfg.Compute.CUs < 24 {
					t.Errorf("compute over-gated: %v", cfg)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.kernel, func(t *testing.T) {
			var k *workloads.Kernel
			for _, kk := range workloads.AllKernels() {
				if kk.Name == tc.kernel {
					k = kk
				}
			}
			trunc := *k
			if trunc.Workgroups > tc.grid {
				trunc.Workgroups = tc.grid
			}
			// The cycle-driven machine has ~1% run-to-run timing texture
			// (queueing, truncated grids) that the interval model does
			// not; widen the FG deadband accordingly, as any real
			// deployment would tune it to its platform's noise floor.
			ctrl := core.New(core.Options{Predictor: pred, Deadband: 0.03})
			baseTime := ev.Run(&trunc, 0, hw.MaxConfig(), tc.grid).Time
			total, baseline := 0.0, 0.0
			var cfg hw.Config
			for i := 0; i < tc.iters; i++ {
				cfg = ctrl.Decide(trunc.Name, i)
				r := ev.Run(&trunc, i, cfg, tc.grid)
				ctrl.Observe(trunc.Name, i, adapt(r, &trunc, i, cfg))
				total += r.Time
				baseline += baseTime
			}
			tc.check(t, cfg)
			// Performance must be essentially preserved even though the
			// controller never saw this simulator during training.
			if loss := total/baseline - 1; loss > 0.08 {
				t.Errorf("performance loss on event sim = %.1f%%", loss*100)
			}
		})
	}
}

func TestEventCountersSane(t *testing.T) {
	ev := New()
	for _, name := range []string{"MaxFlops.Main", "DeviceMemory.Stream", "Sort.BottomScan"} {
		var k *workloads.Kernel
		for _, kk := range workloads.AllKernels() {
			if kk.Name == name {
				k = kk
			}
		}
		r := ev.Run(k, 0, hw.MaxConfig(), grid)
		cs := r.Counters(k, 0, hw.MaxConfig())
		if err := cs.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cs.NormCUsActive != 1 || cs.NormMemClock != 1 {
			t.Errorf("%s: DPM registers wrong: %+v", name, cs)
		}
	}
}

func TestEventCountersMatchIntervalCountersDirectionally(t *testing.T) {
	// The two simulators' counters must agree on which kernel is
	// compute-heavy and which is memory-heavy.
	ev := New()
	iv := gpusim.Default()
	busyOf := func(name string) (evVALU, ivVALU, evMem, ivMem float64) {
		var k *workloads.Kernel
		for _, kk := range workloads.AllKernels() {
			if kk.Name == name {
				k = kk
			}
		}
		trunc := *k
		if trunc.Workgroups > grid {
			trunc.Workgroups = grid
		}
		er := ev.Run(&trunc, 0, hw.MaxConfig(), grid)
		ec := er.Counters(&trunc, 0, hw.MaxConfig())
		ic := iv.Run(&trunc, 0, hw.MaxConfig()).Counters
		return ec.VALUBusy, ic.VALUBusy, ec.MemUnitBusy, ic.MemUnitBusy
	}
	mfEV, mfIV, mfEVMem, mfIVMem := busyOf("MaxFlops.Main")
	dmEV, dmIV, dmEVMem, dmIVMem := busyOf("DeviceMemory.Stream")
	if math.Abs(mfEV-mfIV) > 25 {
		t.Errorf("MaxFlops VALUBusy: event %v vs interval %v", mfEV, mfIV)
	}
	// Both simulators must order the kernels the same way: MaxFlops is
	// the VALU-heavy one, DeviceMemory the memory-heavy one. (Absolute
	// values at the truncated grid are launch-overhead diluted.)
	if !(mfEV > dmEV && mfIV > dmIV) {
		t.Errorf("VALUBusy ordering: event %v/%v interval %v/%v", mfEV, dmEV, mfIV, dmIV)
	}
	if !(dmEVMem > mfEVMem && dmIVMem > mfIVMem) {
		t.Errorf("MemUnitBusy ordering: event %v/%v interval %v/%v", dmEVMem, mfEVMem, dmIVMem, mfIVMem)
	}
}
