// Package eventsim is a wavefront-granularity, cycle-driven simulator of
// the same GCN-class GPU that internal/gpusim models analytically. Where
// gpusim computes closed-form interval estimates (fast enough for the
// 448-configuration × 14-application factorials the experiments need),
// eventsim executes the machine: workgroups dispatch to compute units,
// resident wavefronts interleave vector issue with memory requests,
// misses queue at banked memory channels behind a clock-domain-crossing
// token bucket, and time emerges from the event loop.
//
// Its purpose is validation: the cross-checking tests in this package
// and in internal/gpusim assert that the two simulators agree on the
// behaviours Harmonia depends on — boundedness classification, balance
// knees, monotonicity in each tunable, occupancy-limited latency hiding,
// and the clock-domain crossing effect — so the interval model's speed
// does not come at the cost of unvalidated physics.
//
// Everything is deterministic: cache hits and divergence are spread with
// Bresenham-style error accumulation rather than random numbers.
package eventsim

import (
	"container/heap"
	"math"

	"harmonia/internal/hw"
	"harmonia/internal/workloads"
)

// Params holds the machine constants of the event simulator. They mirror
// gpusim.Model's calibration so that the two simulators describe the
// same hardware.
type Params struct {
	// IssueCyclesPerVALU is how many cycles one wavefront VALU
	// instruction occupies a SIMD (64 lanes over 16 ALUs = 4).
	IssueCyclesPerVALU int
	// MemLatencyNS is the unloaded DRAM round-trip latency.
	MemLatencyNS float64
	// CrossLinesPerCycle is the L2-to-MC clock-domain-crossing
	// throughput in cache lines per compute cycle.
	CrossLinesPerCycle float64
	// ChannelEffBase/ChannelEffRow set per-channel efficiency from row
	// locality, as in gpusim.
	ChannelEffBase float64
	ChannelEffRow  float64
	// L2LatencyCycles is the hit latency of the L2 in compute cycles.
	L2LatencyCycles int
	// MaxOutstandingPerWave caps a wavefront's in-flight misses (its
	// MLP), scaled by the kernel's MLPPerWave.
	MaxOutstandingPerWave int
}

// DefaultParams mirrors gpusim.Default().
func DefaultParams() Params {
	return Params{
		IssueCyclesPerVALU:    4,
		MemLatencyNS:          350,
		CrossLinesPerCycle:    6,
		ChannelEffBase:        0.55,
		ChannelEffRow:         0.35,
		L2LatencyCycles:       80,
		MaxOutstandingPerWave: 1,
	}
}

// Result is the outcome of one event-simulated kernel invocation.
type Result struct {
	// Cycles is the kernel duration in compute-clock cycles.
	Cycles int64
	// Time is the duration in seconds.
	Time float64
	// DRAMBytes is the off-chip traffic.
	DRAMBytes float64
	// IssueSlots counts wavefront VALU instructions issued.
	IssueSlots int64
	// StallCycles counts cycles where at least one SIMD had resident
	// waves but could not issue (all waiting on memory).
	StallCycles int64
	// MemBusyCycles counts cycles with at least one memory request in
	// flight anywhere in the memory system.
	MemBusyCycles int64
	// L2Lines counts memory requests served by the L2.
	L2Lines int64
	// ServiceCycles is the aggregate memory-system service time in
	// compute cycles: DRAM channel occupancy (normalized across the six
	// channels) plus L2 slice occupancy. Its ratio to Cycles mirrors the
	// interval model's MemUnitBusy semantics.
	ServiceCycles float64
	// Waves is the number of wavefronts executed.
	Waves int
}

// AchievedGBs returns the realized DRAM bandwidth.
func (r Result) AchievedGBs() float64 {
	if r.Time <= 0 {
		return 0
	}
	return r.DRAMBytes / r.Time / 1e9
}

// wave is one resident wavefront's execution state.
type wave struct {
	valuLeft    int // wavefront VALU instructions still to issue
	memLeft     int // memory requests still to send
	issuePause  int // cycles left on the instruction currently issuing
	outstanding int // in-flight memory requests
	maxOut      int // MLP cap
	memEvery    int // issue a memory request after this many VALU insts
	sinceMem    int // VALU insts since the last memory request
}

func (w *wave) done() bool { return w.valuLeft <= 0 && w.memLeft <= 0 && w.outstanding <= 0 }

// atCap reports whether the wave cannot send another request right now.
func (w *wave) atCap() bool { return w.outstanding >= w.maxOut }

// returnEvent is a memory request completing back at its wavefront.
type returnEvent struct {
	at int64
	w  *wave
}

// returnHeap is a min-heap of return events ordered by completion cycle.
type returnHeap []returnEvent

func (h returnHeap) Len() int            { return len(h) }
func (h returnHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h returnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *returnHeap) Push(x interface{}) { *h = append(*h, x.(returnEvent)) }
func (h *returnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// simd is one SIMD unit with its resident waves.
type simd struct {
	waves []*wave
	next  int // round-robin cursor
}

// channel is one memory channel: a queue drained at its service rate.
type channel struct {
	freeAt float64 // cycle (fractional) at which the channel is next free
}

// Sim is the event-driven simulator.
type Sim struct {
	P Params
}

// New returns an event simulator with default parameters.
func New() *Sim { return &Sim{P: DefaultParams()} }

// bresenham deterministically spreads a fraction: it returns a closure
// that yields true with the given long-run frequency.
func bresenham(frac float64) func() bool {
	acc := 0.0
	return func() bool {
		acc += frac
		if acc >= 1 {
			acc -= 1
			return true
		}
		return false
	}
}

// Run event-simulates one invocation of kernel k's iteration iter at
// configuration cfg. Large grids are truncated to maxWorkgroups (with
// traffic and issue counts representative of the truncated portion);
// pass 0 for the kernel's natural size.
func (s *Sim) Run(k *workloads.Kernel, iter int, cfg hw.Config, maxWorkgroups int) Result {
	phase := k.PhaseFor(iter)
	div := k.DivergenceFor(phase)
	util := 1 - div
	if util < 1e-3 {
		util = 1e-3
	}

	workgroups := int(float64(k.Workgroups) * phase.WorkScale)
	if workgroups < 1 {
		workgroups = 1
	}
	if maxWorkgroups > 0 && workgroups > maxWorkgroups {
		workgroups = maxWorkgroups
	}
	wavesPerWG := k.WavesPerWorkgroup()
	totalWaves := workgroups * wavesPerWG

	// Per-wavefront program: issued VALU instructions (divergence
	// inflates) and memory requests. Memory requests are expressed in
	// cache lines of DRAM-visible traffic plus L2 hits.
	valuPerWave := int(math.Ceil(k.VALUPerWI / util))
	bytesPerWI := k.FetchPerWI*k.BytesPerFetch*phase.FetchScale + k.WritePerWI*k.BytesPerWrite
	bytesPerWave := bytesPerWI * hw.WavefrontSize
	linesPerWave := int(math.Ceil(bytesPerWave / hw.CacheLineBytes))
	if linesPerWave < 1 {
		linesPerWave = 1
	}
	memEvery := valuPerWave / linesPerWave
	if memEvery < 1 {
		memEvery = 1
	}

	// Machine geometry.
	nCU := cfg.Compute.CUs
	nSIMD := nCU * hw.SIMDsPerCU
	occWaves := k.OccupancyWaves()
	fCU := cfg.Compute.Freq.Hz()

	// Memory system, expressed in compute cycles.
	l2hit := effectiveL2Hit(k, nCU)
	hitGen := bresenham(l2hit)
	chanEff := s.P.ChannelEffBase + s.P.ChannelEffRow*k.RowHit
	chBW := cfg.Memory.BandwidthGBs() * 1e9 * chanEff / hw.MemChannels // bytes/s per channel
	chCyclesPerLine := hw.CacheLineBytes / chBW * fCU                  // compute cycles to drain one line
	latencyCycles := s.P.MemLatencyNS * 1e-9 * fCU
	maxOut := int(math.Max(1, math.Round(k.MLPPerWave*float64(s.P.MaxOutstandingPerWave))))

	// Clock-domain crossing: a token bucket replenished per cycle.
	crossTokens := 0.0

	channels := make([]channel, hw.MemChannels)
	nextChannel := 0

	// Dispatch: fill SIMDs with waves up to occupancy; refill as waves
	// retire. Waves are identical, so dispatch order is immaterial.
	simds := make([]simd, nSIMD)
	pending := totalWaves
	newWave := func() *wave {
		return &wave{
			valuLeft: valuPerWave,
			memLeft:  linesPerWave,
			maxOut:   maxOut,
			memEvery: memEvery,
		}
	}
	for i := range simds {
		for len(simds[i].waves) < occWaves && pending > 0 {
			simds[i].waves = append(simds[i].waves, newWave())
			pending--
		}
	}

	var (
		now           int64
		issueSlots    int64
		stallCycles   int64
		memBusyCycles int64
		dramLines     int64
		l2Lines       int64
		retired       int
	)
	// Requests waiting for a clock-domain-crossing token, and the heap
	// of in-flight requests ordered by completion cycle.
	var crossQueue []*wave
	var returns returnHeap

	serialCycles := int64(k.SerialCycles)

	for retired < totalWaves {
		now++
		// Guard against pathological configurations.
		if now > 1<<40 {
			break
		}

		if len(returns) > 0 || len(crossQueue) > 0 {
			memBusyCycles++
		}

		// Complete returned memory requests.
		for len(returns) > 0 && returns[0].at <= now {
			ev := heap.Pop(&returns).(returnEvent)
			ev.w.outstanding--
		}

		// Replenish crossing tokens and drain the crossing queue into
		// memory channels.
		crossTokens += s.P.CrossLinesPerCycle
		for len(crossQueue) > 0 && crossTokens >= 1 {
			crossTokens--
			w := crossQueue[0]
			crossQueue = crossQueue[1:]
			// Pick the next channel round-robin; its queue delay adds
			// to the request's return time.
			ch := &channels[nextChannel]
			nextChannel = (nextChannel + 1) % hw.MemChannels
			start := math.Max(float64(now), ch.freeAt)
			ch.freeAt = start + chCyclesPerLine
			dramLines++
			heap.Push(&returns, returnEvent{at: int64(ch.freeAt + latencyCycles), w: w})
		}

		anyResident := false
		for si := range simds {
			sd := &simds[si]
			if len(sd.waves) == 0 {
				continue
			}
			anyResident = true
			// Round-robin: find an issuable wave.
			issued := false
			for off := 0; off < len(sd.waves); off++ {
				w := sd.waves[(sd.next+off)%len(sd.waves)]
				if w.issuePause > 0 {
					w.issuePause--
					issued = true // the SIMD is occupied, not stalled
					break
				}
				// Time to send a memory request?
				if w.memLeft > 0 && (w.sinceMem >= w.memEvery || w.valuLeft <= 0) {
					if w.atCap() {
						continue // at MLP cap; try another wave
					}
					w.memLeft--
					w.sinceMem = 0
					w.outstanding++
					if hitGen() {
						// L2 hit: returns after the hit latency without
						// touching the crossing or the channels.
						l2Lines++
						heap.Push(&returns, returnEvent{at: now + int64(s.P.L2LatencyCycles), w: w})
					} else {
						crossQueue = append(crossQueue, w)
					}
					issued = true
					sd.next = (sd.next + off + 1) % len(sd.waves)
					break
				}
				if w.valuLeft > 0 {
					w.valuLeft--
					w.sinceMem++
					w.issuePause = s.P.IssueCyclesPerVALU - 1
					issueSlots++
					issued = true
					sd.next = (sd.next + off + 1) % len(sd.waves)
					break
				}
			}
			if !issued {
				stallCycles++
			}
			// Retire finished waves and refill from the pending pool.
			live := sd.waves[:0]
			for _, w := range sd.waves {
				if w.done() {
					retired++
					continue
				}
				live = append(live, w)
			}
			sd.waves = live
			for len(sd.waves) < occWaves && pending > 0 {
				sd.waves = append(sd.waves, newWave())
				pending--
			}
		}
		if !anyResident && pending == 0 {
			break
		}
	}

	totalCycles := now + serialCycles
	// L2 service bandwidth mirrors the interval model's 512 B/cycle.
	const l2BytesPerCycle = 512.0
	service := float64(dramLines)*chCyclesPerLine/hw.MemChannels +
		float64(l2Lines)*hw.CacheLineBytes/l2BytesPerCycle
	return Result{
		Cycles:        totalCycles,
		Time:          float64(totalCycles)/fCU + k.LaunchOverhead,
		DRAMBytes:     float64(dramLines) * hw.CacheLineBytes,
		IssueSlots:    issueSlots,
		StallCycles:   stallCycles,
		MemBusyCycles: memBusyCycles,
		L2Lines:       l2Lines,
		ServiceCycles: service,
		Waves:         totalWaves,
	}
}

// effectiveL2Hit mirrors gpusim.EffectiveL2Hit.
func effectiveL2Hit(k *workloads.Kernel, nCU int) float64 {
	frac := float64(nCU-hw.MinCUs) / float64(hw.MaxCUs-hw.MinCUs)
	hit := k.L2Hit * (1 - k.L2Thrash*frac)
	return math.Max(hit, 0)
}
