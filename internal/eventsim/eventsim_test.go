package eventsim

import (
	"math"
	"testing"

	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/workloads"
)

// grid caps workgroup counts so the cycle-driven runs stay fast.
const grid = 400

func kernel(t *testing.T, name string) *workloads.Kernel {
	t.Helper()
	for _, k := range workloads.AllKernels() {
		if k.Name == name {
			return k
		}
	}
	t.Fatalf("kernel %q missing", name)
	return nil
}

// truncated returns a phase-free copy of the kernel with the grid capped,
// for apples-to-apples comparison with the interval model.
func truncated(k *workloads.Kernel) *workloads.Kernel {
	c := *k
	c.Phases = nil
	if c.Workgroups > grid {
		c.Workgroups = grid
	}
	return &c
}

func cfg(cus int, cf, mf hw.MHz) hw.Config {
	return hw.Config{
		Compute: hw.ComputeConfig{CUs: cus, Freq: cf},
		Memory:  hw.MemConfig{BusFreq: mf},
	}
}

func TestBasicResultSanity(t *testing.T) {
	s := New()
	for _, name := range []string{"MaxFlops.Main", "DeviceMemory.Stream", "Sort.BottomScan"} {
		k := kernel(t, name)
		r := s.Run(k, 0, hw.MaxConfig(), grid)
		if r.Time <= 0 || r.Cycles <= 0 {
			t.Fatalf("%s: degenerate result %+v", name, r)
		}
		if r.Waves <= 0 || r.IssueSlots <= 0 {
			t.Fatalf("%s: no work executed %+v", name, r)
		}
		if r.DRAMBytes < 0 {
			t.Fatalf("%s: negative traffic", name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	s := New()
	k := kernel(t, "CoMD.AdvanceVelocity")
	a := s.Run(k, 0, hw.MaxConfig(), grid)
	b := s.Run(k, 0, hw.MaxConfig(), grid)
	if a != b {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestBandwidthNeverExceedsChannelCapacity(t *testing.T) {
	s := New()
	for _, name := range []string{"DeviceMemory.Stream", "CoMD.AdvanceVelocity", "SPMV.CSRVector"} {
		k := kernel(t, name)
		for _, mf := range hw.MemFreqs() {
			c := cfg(32, 1000, mf)
			r := s.Run(k, 0, c, grid)
			eff := s.P.ChannelEffBase + s.P.ChannelEffRow*k.RowHit
			cap := c.Memory.BandwidthGBs() * eff
			if r.AchievedGBs() > cap*1.02 {
				t.Errorf("%s @ %v: %.1f GB/s exceeds capacity %.1f", name, mf, r.AchievedGBs(), cap)
			}
		}
	}
}

func TestTimeMonotoneInFrequencies(t *testing.T) {
	s := New()
	for _, name := range []string{"DeviceMemory.Stream", "Sort.BottomScan", "Stencil.Step"} {
		k := kernel(t, name)
		// Raising memory frequency must not slow anything down.
		prev := math.Inf(1)
		for _, mf := range hw.MemFreqs() {
			tm := s.Run(k, 0, cfg(32, 1000, mf), grid).Time
			if tm > prev*1.01 {
				t.Errorf("%s: slower at higher memory freq %v", name, mf)
			}
			prev = tm
		}
		// Raising compute frequency must not slow anything down.
		prev = math.Inf(1)
		for _, cf := range hw.CUFreqs() {
			tm := s.Run(k, 0, cfg(32, cf, 1375), grid).Time
			if tm > prev*1.01 {
				t.Errorf("%s: slower at higher compute freq %v", name, cf)
			}
			prev = tm
		}
	}
}

func TestClockDomainCrossingEmerges(t *testing.T) {
	// The crossing token bucket must throttle DRAM bandwidth at low
	// compute frequency for a streaming kernel, exactly as the interval
	// model's crossing cap does (Figure 9).
	s := New()
	k := kernel(t, "DeviceMemory.Stream")
	hi := s.Run(k, 0, cfg(32, 1000, 1375), grid)
	lo := s.Run(k, 0, cfg(32, 300, 1375), grid)
	if lo.AchievedGBs() >= hi.AchievedGBs()*0.8 {
		t.Errorf("achieved BW at 300MHz = %.1f, at 1GHz = %.1f; crossing should bite",
			lo.AchievedGBs(), hi.AchievedGBs())
	}
}

func TestOccupancyLimitsLatencyHiding(t *testing.T) {
	// A low-occupancy kernel (Sort.BottomScan: 3 waves/SIMD) must show
	// proportionally more stall cycles than a full-occupancy streaming
	// kernel at the same configuration class.
	s := New()
	scan := s.Run(kernel(t, "Sort.BottomScan"), 0, hw.MaxConfig(), grid)
	adv := s.Run(kernel(t, "CoMD.AdvanceVelocity"), 0, hw.MaxConfig(), grid)
	scanStall := float64(scan.StallCycles) / float64(scan.Cycles)
	advStall := float64(adv.StallCycles) / float64(adv.Cycles)
	_ = advStall
	if scanStall <= 0 {
		t.Errorf("BottomScan shows no stalls at 30%% occupancy (stall frac %v)", scanStall)
	}
}

// The headline validation: the event-driven machine and the interval
// model agree on execution time within a modest band across kernels and
// configurations, and agree exactly on orderings.
func TestCrossValidationAgainstIntervalModel(t *testing.T) {
	ev := New()
	iv := gpusim.Default()
	kernels := []string{
		"MaxFlops.Main", "DeviceMemory.Stream", "Sort.BottomScan",
		"CoMD.AdvanceVelocity", "Stencil.Step", "SPMV.CSRVector",
	}
	configs := []hw.Config{
		hw.MaxConfig(),
		cfg(32, 1000, 475),
		cfg(32, 300, 1375),
		cfg(8, 1000, 1375),
		cfg(16, 600, 925),
	}
	for _, name := range kernels {
		k := truncated(kernel(t, name))
		for _, c := range configs {
			et := ev.Run(k, 0, c, grid).Time
			it := iv.Run(k, 0, c).Time
			ratio := et / it
			if ratio < 0.65 || ratio > 1.5 {
				t.Errorf("%s @ %v: event %.4fms vs interval %.4fms (ratio %.2f)",
					name, c, et*1e3, it*1e3, ratio)
			}
		}
	}
}

func TestCrossValidationBoundednessOrdering(t *testing.T) {
	// Both simulators must agree on which kernel suffers more from the
	// memory-frequency floor: the streaming kernel, not the
	// occupancy-limited one (Figure 7's contrast).
	ev := New()
	iv := gpusim.Default()
	loss := func(run func(k *workloads.Kernel, c hw.Config) float64, k *workloads.Kernel) float64 {
		return run(k, cfg(32, 1000, 475))/run(k, hw.MaxConfig()) - 1
	}
	evRun := func(k *workloads.Kernel, c hw.Config) float64 { return ev.Run(k, 0, c, grid).Time }
	ivRun := func(k *workloads.Kernel, c hw.Config) float64 { return iv.Run(k, 0, c).Time }

	scan := truncated(kernel(t, "Sort.BottomScan"))
	adv := truncated(kernel(t, "CoMD.AdvanceVelocity"))
	for _, r := range []struct {
		name string
		run  func(k *workloads.Kernel, c hw.Config) float64
	}{{"event", evRun}, {"interval", ivRun}} {
		if loss(r.run, adv) <= loss(r.run, scan)+0.05 {
			t.Errorf("%s sim: AdvanceVelocity loss %.2f not above BottomScan loss %.2f",
				r.name, loss(r.run, adv), loss(r.run, scan))
		}
	}
}

func TestCrossValidationKneeAgreement(t *testing.T) {
	// Both simulators must place DeviceMemory's compute knee (at max
	// memory) in the same region: performance saturates between 16 and
	// 28 CUs at 1 GHz.
	ev := New()
	iv := gpusim.Default()
	k := truncated(kernel(t, "DeviceMemory.Stream"))
	knee := func(run func(c hw.Config) float64) int {
		base := run(cfg(32, 1000, 1375))
		for _, n := range hw.CUCounts() {
			if run(cfg(n, 1000, 1375)) <= base*1.05 {
				return n
			}
		}
		return 32
	}
	evKnee := knee(func(c hw.Config) float64 { return ev.Run(k, 0, c, grid).Time })
	ivKnee := knee(func(c hw.Config) float64 { return iv.Run(k, 0, c).Time })
	if evKnee < 12 || evKnee > 28 {
		t.Errorf("event-sim knee at %d CUs, want interior", evKnee)
	}
	diff := evKnee - ivKnee
	if diff < -8 || diff > 8 {
		t.Errorf("knees disagree: event %d CUs vs interval %d CUs", evKnee, ivKnee)
	}
}

func TestPhaseScalingAffectsWork(t *testing.T) {
	s := New()
	k := kernel(t, "Graph500.BottomStepUp")
	// Iteration 7 has WorkScale 0.30 (6000 workgroups), iteration 2 has
	// 2.8 (56000); with a 10000-workgroup cap the small phase stays
	// uncapped and the big one hits the cap.
	small := s.Run(k, 7, hw.MaxConfig(), 10000)
	big := s.Run(k, 2, hw.MaxConfig(), 10000)
	if small.Waves >= big.Waves {
		t.Errorf("phase scaling lost: %d vs %d waves", small.Waves, big.Waves)
	}
}

func TestMaxWorkgroupsTruncation(t *testing.T) {
	s := New()
	k := kernel(t, "DeviceMemory.Stream")
	r := s.Run(k, 0, hw.MaxConfig(), 100)
	if r.Waves != 100*k.WavesPerWorkgroup() {
		t.Errorf("waves = %d, want %d", r.Waves, 100*k.WavesPerWorkgroup())
	}
}

func TestBresenhamFrequency(t *testing.T) {
	gen := bresenham(0.3)
	hits := 0
	for i := 0; i < 1000; i++ {
		if gen() {
			hits++
		}
	}
	if hits < 295 || hits > 305 {
		t.Errorf("bresenham(0.3) hit %d of 1000", hits)
	}
	never := bresenham(0)
	for i := 0; i < 10; i++ {
		if never() {
			t.Fatal("bresenham(0) fired")
		}
	}
}
