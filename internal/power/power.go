// Package power models the electrical power of the GPU card at the three
// rails the paper measures (Section 6, Eq. 4):
//
//	GPUCardPwr = GPUPwr + MemPwr + OtherPwr
//
// GPUPwr is the GPU chip (compute units, uncore, integrated memory
// controllers): per-CU dynamic CV²f power scaled by activity, voltage-
// dependent leakage, and an uncore share. Power-gated CUs draw only a
// small residual.
//
// MemPwr is the off-chip GDDR5 devices plus the DDR PHYs: background
// (PLL/DLL/refresh) and PHY power that scale with bus frequency, and
// access energy per byte whose read/write + termination component rises
// slightly at lower bus frequencies (Section 2.4). The memory rail
// voltage is fixed, matching the paper's platform constraint.
//
// OtherPwr is the fan (pinned at maximum RPM, as the paper does to keep
// it constant), voltage regulators, and board losses.
package power

import (
	"math"

	"harmonia/internal/hw"
)

// Activity summarizes what the hardware was doing during an interval; the
// timing simulator produces these quantities.
type Activity struct {
	// VALUBusyFrac is the fraction of time the vector ALUs were issuing
	// (counters.Set.VALUBusy / 100).
	VALUBusyFrac float64
	// MemUnitBusyFrac is the fraction of time the memory pipeline was
	// active (counters.Set.MemUnitBusy / 100).
	MemUnitBusyFrac float64
	// AchievedGBs is realized DRAM bandwidth in GB/s.
	AchievedGBs float64
}

// Rails is the decomposed card power in watts (Eq. 4).
type Rails struct {
	GPU   float64 // GPU chip: CUs + uncore + integrated MCs
	Mem   float64 // off-chip GDDR5 + DDR PHYs
	Other float64 // fan, VRMs, board losses
}

// Card returns total GPU card power, the quantity the paper measures at
// the PCIe connector interface.
func (r Rails) Card() float64 { return r.GPU + r.Mem + r.Other }

// Params holds the calibration constants of the power model.
type Params struct {
	// CUDynW is per-CU dynamic power at maximum frequency/voltage and
	// full activity (watts).
	CUDynW float64
	// ActivityBase/ActivityVALU/ActivityMem compose the per-CU activity
	// factor: base + valu·VALUBusyFrac + mem·MemUnitBusyFrac.
	ActivityBase float64
	ActivityVALU float64
	ActivityMem  float64
	// CULeakW is per-active-CU leakage at the boost voltage (watts);
	// leakage scales linearly with voltage.
	CULeakW float64
	// GatedCULeakW is residual leakage of a power-gated CU at boost
	// voltage (watts).
	GatedCULeakW float64
	// UncoreDynW is uncore (L2, crossbar, MC logic) dynamic power at
	// maximum frequency/voltage and full memory activity.
	UncoreDynW float64
	// UncoreBaseFrac is the fraction of uncore dynamic power drawn even
	// when idle (clock distribution).
	UncoreBaseFrac float64
	// UncoreLeakW is uncore leakage at boost voltage.
	UncoreLeakW float64
	// GPUBaseW is frequency-independent GPU chip power (command
	// processor, display, PCIe logic).
	GPUBaseW float64

	// MemBackgroundBaseW is bus-frequency-independent DRAM background
	// power (refresh, standby).
	MemBackgroundBaseW float64
	// MemBackgroundScaleW is the additional background power at maximum
	// bus frequency (PLL/DLL/clocking), scaling linearly with frequency.
	MemBackgroundScaleW float64
	// PHYScaleW is DDR PHY power at maximum bus frequency, scaling
	// linearly with frequency.
	PHYScaleW float64
	// AccessPJPerByte is DRAM access energy (activate + read/write +
	// termination) in picojoules per byte at maximum bus frequency.
	AccessPJPerByte float64
	// TerminationUpturn is the fractional increase of per-byte access
	// energy per unit of (fmax/f - 1): lower bus frequencies stretch
	// access windows and raise termination energy (Section 2.4).
	TerminationUpturn float64

	// OtherW is the constant fan + VRM + board power.
	OtherW float64

	// MemVoltageScaling enables the paper's what-if of Sections 3.3 and
	// 7.2: scale the GDDR5 rail voltage with bus frequency (the measured
	// platform could not, and the paper notes the savings "would
	// actually be greater" if it could). When enabled, the memory rail's
	// power scales by (V/Vmax)² with V interpolated between
	// MemVoltageFloor at 475 MHz and hw.MemVoltage at 1375 MHz.
	MemVoltageScaling bool
}

// DefaultParams returns the calibration used in the experiments. The
// targets are the paper's measured shapes: a memory-intensive workload at
// the stock configuration splits roughly 55/30/15 between GPU, memory and
// rest-of-card (Figure 1); board power swings ~70-90% across compute
// configurations at maximum memory bandwidth (Figure 4); and ~10% across
// memory configurations at maximum compute (Figure 5).
func DefaultParams() Params {
	return Params{
		CUDynW:       3.2,
		ActivityBase: 0.25, ActivityVALU: 0.60, ActivityMem: 0.15,
		CULeakW:      0.38,
		GatedCULeakW: 0.05,
		UncoreDynW:   20, UncoreBaseFrac: 0.4, UncoreLeakW: 8,
		GPUBaseW: 4,

		MemBackgroundBaseW:  6,
		MemBackgroundScaleW: 20,
		PHYScaleW:           14,
		AccessPJPerByte:     70,
		TerminationUpturn:   0.15,

		OtherW: 15,
	}
}

// Model evaluates card power from a configuration and an activity sample.
type Model struct {
	p Params
}

// New returns a power model with the given parameters.
func New(p Params) *Model { return &Model{p: p} }

// Default returns a power model with DefaultParams.
func Default() *Model { return New(DefaultParams()) }

// Params returns the model's parameters.
func (m *Model) Params() Params { return m.p }

const boostVoltage = 1.19 // volts, the reference for leakage scaling

// Rails computes the decomposed card power for configuration cfg under
// activity a.
func (m *Model) Rails(cfg hw.Config, a Activity) Rails {
	p := m.p
	v := cfg.Compute.Voltage()
	fFrac := cfg.Compute.Freq.GHz() / hw.MaxCUFreq.GHz()
	vf := (v * v) / (boostVoltage * boostVoltage) * fFrac

	act := p.ActivityBase + p.ActivityVALU*clamp01(a.VALUBusyFrac) +
		p.ActivityMem*clamp01(a.MemUnitBusyFrac)
	act = math.Min(act, 1)

	nActive := float64(cfg.Compute.CUs)
	nGated := float64(hw.MaxCUs - cfg.Compute.CUs)

	cuDyn := nActive * p.CUDynW * vf * act
	cuLeak := (nActive*p.CULeakW + nGated*p.GatedCULeakW) * v / boostVoltage
	uncoreAct := p.UncoreBaseFrac + (1-p.UncoreBaseFrac)*clamp01(a.MemUnitBusyFrac)
	uncoreDyn := p.UncoreDynW * vf * uncoreAct
	uncoreLeak := p.UncoreLeakW * v / boostVoltage
	gpu := p.GPUBaseW + cuDyn + cuLeak + uncoreDyn + uncoreLeak

	mem := m.MemRail(cfg, a).Total()

	return Rails{GPU: gpu, Mem: mem, Other: p.OtherW}
}

func clamp01(v float64) float64 { return math.Max(0, math.Min(1, v)) }
