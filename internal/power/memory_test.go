package power

import (
	"math"
	"testing"

	"harmonia/internal/hw"
)

func TestMemRailMatchesRailsTotal(t *testing.T) {
	m := Default()
	for _, c := range []hw.Config{hw.MinConfig(), hw.MaxConfig(), cfg(16, 700, 925)} {
		for _, a := range []Activity{{}, busy()} {
			want := m.Rails(c, a).Mem
			got := m.MemRail(c, a).Total()
			if math.Abs(want-got) > 1e-12 {
				t.Errorf("MemRail total %v != Rails.Mem %v at %v", got, want, c)
			}
		}
	}
}

func TestMemBreakdownComponents(t *testing.T) {
	m := Default()
	b := m.MemRail(hw.MaxConfig(), Activity{AchievedGBs: 200})
	if b.Background <= 0 || b.PHY <= 0 || b.Access <= 0 {
		t.Fatalf("non-positive component: %+v", b)
	}
	// No traffic -> no access power; background and PHY unchanged.
	idle := m.MemRail(hw.MaxConfig(), Activity{})
	if idle.Access != 0 {
		t.Errorf("idle access power = %v, want 0", idle.Access)
	}
	if idle.Background != b.Background || idle.PHY != b.PHY {
		t.Error("background/PHY depend on traffic")
	}
	// Background and PHY fall with bus frequency.
	low := m.MemRail(cfg(32, 1000, 475), Activity{})
	if low.Background >= idle.Background || low.PHY >= idle.PHY {
		t.Errorf("frequency-dependent components did not fall: %+v vs %+v", low, idle)
	}
}

func TestMemVoltageAtEndpoints(t *testing.T) {
	if got := MemVoltageAt(hw.MaxMemFreq); math.Abs(got-hw.MemVoltage) > 1e-12 {
		t.Errorf("voltage at max = %v, want %v", got, hw.MemVoltage)
	}
	if got := MemVoltageAt(hw.MinMemFreq); math.Abs(got-MemVoltageFloor) > 1e-12 {
		t.Errorf("voltage at min = %v, want %v", got, MemVoltageFloor)
	}
	mid := MemVoltageAt(925)
	if mid <= MemVoltageFloor || mid >= hw.MemVoltage {
		t.Errorf("mid voltage = %v, want interior", mid)
	}
}

func TestMemVoltageScalingWhatIf(t *testing.T) {
	// Section 7.2: "more memory power saving would be possible if
	// HD7970's memory interface supports multiple voltages." With the
	// what-if enabled, memory power at reduced bus frequencies must drop
	// further than with the fixed rail; at maximum frequency nothing
	// changes.
	fixed := Default()
	params := DefaultParams()
	params.MemVoltageScaling = true
	scaled := New(params)

	a := Activity{AchievedGBs: 60}
	atMaxFixed := fixed.MemRail(hw.MaxConfig(), a).Total()
	atMaxScaled := scaled.MemRail(hw.MaxConfig(), a).Total()
	if math.Abs(atMaxFixed-atMaxScaled) > 1e-12 {
		t.Errorf("voltage scaling changed power at max frequency: %v vs %v", atMaxFixed, atMaxScaled)
	}

	low := cfg(32, 1000, 475)
	atMinFixed := fixed.MemRail(low, a).Total()
	atMinScaled := scaled.MemRail(low, a).Total()
	if atMinScaled >= atMinFixed {
		t.Fatalf("voltage scaling saved nothing at 475MHz: %v vs %v", atMinScaled, atMinFixed)
	}
	wantRatio := (MemVoltageFloor * MemVoltageFloor) / (hw.MemVoltage * hw.MemVoltage)
	if got := atMinScaled / atMinFixed; math.Abs(got-wantRatio) > 1e-9 {
		t.Errorf("scaling ratio at floor = %v, want %v", got, wantRatio)
	}
}

func TestMemVoltageScalingMonotone(t *testing.T) {
	params := DefaultParams()
	params.MemVoltageScaling = true
	m := New(params)
	a := Activity{AchievedGBs: 100}
	prev := math.Inf(-1)
	for _, f := range hw.MemFreqs() {
		p := m.MemRail(cfg(32, 1000, f), a).Total()
		if p <= prev {
			t.Errorf("memory power not increasing at %v: %v <= %v", f, p, prev)
		}
		prev = p
	}
}
