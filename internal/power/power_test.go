package power

import (
	"math"
	"testing"
	"testing/quick"

	"harmonia/internal/hw"
)

func cfg(cus int, cf, mf hw.MHz) hw.Config {
	return hw.Config{
		Compute: hw.ComputeConfig{CUs: cus, Freq: cf},
		Memory:  hw.MemConfig{BusFreq: mf},
	}
}

func busy() Activity {
	return Activity{VALUBusyFrac: 0.8, MemUnitBusyFrac: 0.6, AchievedGBs: 150}
}

func TestRailsPositiveEverywhere(t *testing.T) {
	m := Default()
	for _, c := range hw.ConfigSpace() {
		for _, a := range []Activity{{}, busy(), {VALUBusyFrac: 1, MemUnitBusyFrac: 1, AchievedGBs: 264}} {
			r := m.Rails(c, a)
			if r.GPU <= 0 || r.Mem <= 0 || r.Other <= 0 {
				t.Fatalf("non-positive rail at %v %+v: %+v", c, a, r)
			}
			if math.IsNaN(r.Card()) || math.IsInf(r.Card(), 0) {
				t.Fatalf("bad card power at %v: %v", c, r.Card())
			}
		}
	}
}

func TestCardIsSumOfRails(t *testing.T) {
	r := Rails{GPU: 100, Mem: 50, Other: 30}
	if r.Card() != 180 {
		t.Errorf("Card = %v, want 180", r.Card())
	}
}

func TestPowerMonotoneInTunables(t *testing.T) {
	// At fixed activity, raising any tunable must raise card power.
	m := Default()
	a := busy()
	for _, base := range hw.ConfigSpace() {
		for _, tu := range hw.Tunables() {
			if up, ok := tu.Step(base, hw.Up); ok {
				if m.Rails(up, a).Card() <= m.Rails(base, a).Card() {
					t.Fatalf("raising %v at %v did not raise power", tu, base)
				}
			}
		}
	}
}

func TestPowerGatingSavesCUPower(t *testing.T) {
	m := Default()
	a := busy()
	full := m.Rails(cfg(32, 1000, 1375), a)
	gated := m.Rails(cfg(8, 1000, 1375), a)
	if gated.GPU >= full.GPU {
		t.Error("gating 24 CUs did not reduce GPU power")
	}
	// Memory rail must be unaffected by CU gating.
	if gated.Mem != full.Mem {
		t.Errorf("CU gating changed memory power: %v vs %v", gated.Mem, full.Mem)
	}
	// Gated CUs still draw a small residual: compare to a hypothetical
	// linear scale-down.
	perCU := (full.GPU - gated.GPU) / 24
	if perCU <= 0 || perCU > 6 {
		t.Errorf("per-CU power %v W implausible", perCU)
	}
}

func TestActivityRaisesPower(t *testing.T) {
	m := Default()
	c := cfg(32, 925, 1375)
	idle := m.Rails(c, Activity{})
	loaded := m.Rails(c, busy())
	if loaded.GPU <= idle.GPU {
		t.Error("activity did not raise GPU power")
	}
	if loaded.Mem <= idle.Mem {
		t.Error("traffic did not raise memory power")
	}
	if loaded.Other != idle.Other {
		t.Error("OtherPwr must be constant (fan pinned at max RPM)")
	}
}

func TestMemoryIntensiveBreakdownShape(t *testing.T) {
	// Figure 1: for a memory-intensive workload at the stock
	// configuration, memory is a major consumer — between 20% and 45%
	// of card power — and GPU chip the largest.
	m := Default()
	r := m.Rails(hw.MaxConfig(), Activity{VALUBusyFrac: 0.35, MemUnitBusyFrac: 1.0, AchievedGBs: 220})
	memShare := r.Mem / r.Card()
	gpuShare := r.GPU / r.Card()
	if memShare < 0.20 || memShare > 0.45 {
		t.Errorf("memory share = %.0f%%, want 20-45%% (Figure 1)", memShare*100)
	}
	if gpuShare <= memShare {
		t.Errorf("GPU share (%.0f%%) should exceed memory share (%.0f%%)", gpuShare*100, memShare*100)
	}
	// Plausible absolute magnitude for a 250W-class card.
	if r.Card() < 120 || r.Card() > 280 {
		t.Errorf("card power = %.0f W implausible", r.Card())
	}
}

func TestMemFrequencyRangeMovesBoardPowerModestly(t *testing.T) {
	// Figure 5: at maximum compute with little traffic, the full memory
	// frequency range moves board power by roughly 10%.
	m := Default()
	a := Activity{VALUBusyFrac: 1, MemUnitBusyFrac: 0.05, AchievedGBs: 5}
	hi := m.Rails(cfg(32, 1000, 1375), a).Card()
	lo := m.Rails(cfg(32, 1000, 475), a).Card()
	variation := (hi - lo) / hi
	if variation < 0.05 || variation > 0.20 {
		t.Errorf("memory-range power variation = %.1f%%, want ~10%%", variation*100)
	}
}

func TestComputeRangeMovesBoardPowerStrongly(t *testing.T) {
	// Figure 4: across compute configurations at maximum memory
	// bandwidth, board power varies on the order of 70%.
	m := Default()
	hi := m.Rails(cfg(32, 1000, 1375), Activity{VALUBusyFrac: 0.4, MemUnitBusyFrac: 1, AchievedGBs: 220}).Card()
	lo := m.Rails(cfg(4, 300, 1375), Activity{VALUBusyFrac: 1, MemUnitBusyFrac: 0.3, AchievedGBs: 25}).Card()
	variation := (hi - lo) / lo
	if variation < 0.4 || variation > 2.0 {
		t.Errorf("compute-range power variation = %.0f%%, want large (paper: ~70%%)", variation*100)
	}
}

func TestTerminationUpturn(t *testing.T) {
	// Per-byte access energy rises at lower bus frequency: compare
	// memory power at equal traffic, minus background/PHY deltas.
	p := DefaultParams()
	m := New(p)
	a := Activity{AchievedGBs: 80}
	aZero := Activity{AchievedGBs: 0}
	accessHi := m.Rails(cfg(32, 1000, 1375), a).Mem - m.Rails(cfg(32, 1000, 1375), aZero).Mem
	accessLo := m.Rails(cfg(32, 1000, 475), a).Mem - m.Rails(cfg(32, 1000, 475), aZero).Mem
	if accessLo <= accessHi {
		t.Errorf("access energy at 475MHz (%v W) should exceed 1375MHz (%v W)", accessLo, accessHi)
	}
	ratio := accessLo / accessHi
	want := 1 + p.TerminationUpturn*(1375.0/475.0-1)
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("upturn ratio = %v, want %v", ratio, want)
	}
}

func TestVoltageScalingDominatesFrequency(t *testing.T) {
	// Dynamic power scales as V²f: the 300->1000 MHz sweep spans the
	// 0.85->1.19V DVFS range too, so the dynamic component rises ~6.5x.
	// Leakage and base power dilute the chip-level ratio; it should
	// still be well above the pure-frequency ratio would suggest for a
	// leakage-dominated chip, and below the dynamic-only 6.5x.
	m := Default()
	a := Activity{VALUBusyFrac: 1, MemUnitBusyFrac: 0.2, AchievedGBs: 10}
	p300 := m.Rails(cfg(32, 300, 1375), a).GPU
	p1000 := m.Rails(cfg(32, 1000, 1375), a).GPU
	ratio := p1000 / p300
	if ratio < 2.2 || ratio > 6.5 {
		t.Errorf("GPU power ratio 1000/300MHz = %.2f, want in (2.2, 6.5)", ratio)
	}
}

func TestActivityClamping(t *testing.T) {
	m := Default()
	c := hw.MaxConfig()
	over := m.Rails(c, Activity{VALUBusyFrac: 5, MemUnitBusyFrac: 5, AchievedGBs: 100})
	max := m.Rails(c, Activity{VALUBusyFrac: 1, MemUnitBusyFrac: 1, AchievedGBs: 100})
	if over.Card() != max.Card() {
		t.Errorf("activity not clamped: %v vs %v", over.Card(), max.Card())
	}
	neg := m.Rails(c, Activity{VALUBusyFrac: -1, MemUnitBusyFrac: -1, AchievedGBs: -50})
	idle := m.Rails(c, Activity{})
	if neg.Card() != idle.Card() {
		t.Errorf("negative activity not clamped: %v vs %v", neg.Card(), idle.Card())
	}
}

// Property: power is monotone non-decreasing in each activity component.
func TestPowerMonotoneInActivityProperty(t *testing.T) {
	m := Default()
	c := cfg(16, 700, 925)
	f := func(v1, m1, g1, v2, m2, g2 uint8) bool {
		a := Activity{float64(v1) / 255, float64(m1) / 255, float64(g1)}
		b := Activity{float64(v2) / 255, float64(m2) / 255, float64(g2)}
		if a.VALUBusyFrac > b.VALUBusyFrac {
			a.VALUBusyFrac, b.VALUBusyFrac = b.VALUBusyFrac, a.VALUBusyFrac
		}
		if a.MemUnitBusyFrac > b.MemUnitBusyFrac {
			a.MemUnitBusyFrac, b.MemUnitBusyFrac = b.MemUnitBusyFrac, a.MemUnitBusyFrac
		}
		if a.AchievedGBs > b.AchievedGBs {
			a.AchievedGBs, b.AchievedGBs = b.AchievedGBs, a.AchievedGBs
		}
		return m.Rails(c, b).Card() >= m.Rails(c, a).Card()-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
