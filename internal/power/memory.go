package power

import (
	"math"

	"harmonia/internal/hw"
)

// MemBreakdown decomposes the memory rail into the components Section
// 2.4 of the paper discusses: background (PLL/DLL/refresh/standby), DDR
// PHY, and access (activate/precharge + read/write + termination).
type MemBreakdown struct {
	Background float64
	PHY        float64
	Access     float64
}

// Total returns the memory rail total in watts.
func (m MemBreakdown) Total() float64 { return m.Background + m.PHY + m.Access }

// MemRail computes the decomposed memory power for a configuration and
// activity. Rails' Mem field equals MemRail(...).Total().
func (m *Model) MemRail(cfg hw.Config, a Activity) MemBreakdown {
	p := m.p
	mFrac := float64(cfg.Memory.BusFreq) / float64(hw.MaxMemFreq)
	vScale := m.memVoltageScale(cfg.Memory.BusFreq)
	energyPerByte := p.AccessPJPerByte * (1 + p.TerminationUpturn*(1/mFrac-1))
	return MemBreakdown{
		Background: (p.MemBackgroundBaseW + p.MemBackgroundScaleW*mFrac) * vScale,
		PHY:        p.PHYScaleW * mFrac * vScale,
		Access:     energyPerByte * 1e-12 * math.Max(a.AchievedGBs, 0) * 1e9 * vScale,
	}
}

// Memory-voltage-scaling what-if (Sections 3.3, 6, 7.2): the paper's
// platform could not scale the memory rail voltage with bus frequency
// and notes repeatedly that "the differences would actually be greater"
// if it could. These constants model the hypothetical: GDDR5 rail
// voltage scaled linearly from MemVoltage at the maximum bus frequency
// down to MemVoltageFloor at the minimum, with the frequency-dependent
// memory power scaling by (V/Vmax)².
const (
	// MemVoltageFloor is the hypothetical minimum GDDR5 rail voltage at
	// the 475 MHz bus floor.
	MemVoltageFloor = 1.35
)

// MemVoltageAt returns the hypothetical scaled memory rail voltage for a
// bus frequency (only meaningful when the what-if is enabled; the
// measured platform runs the rail at the fixed hw.MemVoltage).
func MemVoltageAt(f hw.MHz) float64 {
	frac := float64(f-hw.MinMemFreq) / float64(hw.MaxMemFreq-hw.MinMemFreq)
	return MemVoltageFloor + frac*(hw.MemVoltage-MemVoltageFloor)
}

// memVoltageScale returns the (V/Vmax)² factor applied to memory power,
// or 1 when voltage scaling is disabled (the paper's measured platform).
func (m *Model) memVoltageScale(f hw.MHz) float64 {
	if !m.p.MemVoltageScaling {
		return 1
	}
	v := MemVoltageAt(f)
	return (v * v) / (hw.MemVoltage * hw.MemVoltage)
}
