// Package metrics provides the energy-efficiency figures of merit the
// paper evaluates against: energy, energy-delay (ED), and energy-delay
// squared (ED²), plus the normalization and geometric-mean helpers used
// throughout the results section (Section 3.4, Section 7).
package metrics

import (
	"fmt"
	"math"

	"harmonia/internal/floats"
)

// Sample is one measured operating interval: how long it took and how much
// average power it drew. All of the paper's figures of merit derive from
// these two quantities.
type Sample struct {
	// Seconds is the execution time D ("the actual time of kernel
	// execution", Section 3.4).
	Seconds float64
	// Watts is the average total power over the interval.
	Watts float64
}

// Energy returns the energy in joules.
func (s Sample) Energy() float64 { return s.Watts * s.Seconds }

// ED returns the energy-delay product in joule-seconds.
func (s Sample) ED() float64 { return s.Energy() * s.Seconds }

// ED2 returns the energy-delay-squared product (J·s²), the paper's primary
// evaluation metric for HPC workloads (Section 3.4).
func (s Sample) ED2() float64 { return s.Energy() * s.Seconds * s.Seconds }

// Performance returns 1/execution time, the y-axis of the paper's balance
// plots (Figure 3).
func (s Sample) Performance() float64 {
	if s.Seconds <= 0 {
		return 0
	}
	return 1 / s.Seconds
}

// Add accumulates another interval into s: times add, energy adds, and the
// combined power is the energy-weighted average.
func (s Sample) Add(o Sample) Sample {
	total := s.Seconds + o.Seconds
	if total <= 0 {
		return Sample{}
	}
	return Sample{
		Seconds: total,
		Watts:   (s.Energy() + o.Energy()) / total,
	}
}

func (s Sample) String() string {
	return fmt.Sprintf("%.4fs @ %.1fW (%.1fJ)", s.Seconds, s.Watts, s.Energy())
}

// Improvement returns the fractional improvement of metric value got over
// baseline base for a lower-is-better metric (energy, ED, ED², time):
// 0.12 means "12% better than baseline". Matches the paper's
// "improvement relative to the baseline" presentation in Figures 10-13.
func Improvement(base, got float64) float64 {
	if floats.Zero(base) {
		return 0
	}
	return (base - got) / base
}

// Speedup returns base/got for a lower-is-better quantity such as
// execution time: 1.03 means 3% faster than baseline.
func Speedup(base, got float64) float64 {
	if floats.Zero(got) {
		return math.Inf(1)
	}
	return base / got
}

// GeoMean returns the geometric mean of xs. The paper reports all
// cross-application averages as geometric means (Section 7). Non-positive
// inputs are invalid and produce NaN.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// GeoMeanImprovement converts a slice of per-application ratios
// (got/baseline, lower is better) into an average fractional improvement:
// it geo-means the ratios and returns 1 - geomean.
func GeoMeanImprovement(ratios []float64) float64 {
	return 1 - GeoMean(ratios)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MaxAbs returns the element of xs with the largest absolute value
// (0 for empty input).
func MaxAbs(xs []float64) float64 {
	best := 0.0
	for _, x := range xs {
		if math.Abs(x) > math.Abs(best) {
			best = x
		}
	}
	return best
}
