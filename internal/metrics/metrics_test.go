package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSampleDerivedMetrics(t *testing.T) {
	s := Sample{Seconds: 2, Watts: 100}
	if got := s.Energy(); got != 200 {
		t.Errorf("Energy = %v, want 200", got)
	}
	if got := s.ED(); got != 400 {
		t.Errorf("ED = %v, want 400", got)
	}
	if got := s.ED2(); got != 800 {
		t.Errorf("ED2 = %v, want 800", got)
	}
	if got := s.Performance(); got != 0.5 {
		t.Errorf("Performance = %v, want 0.5", got)
	}
}

func TestSamplePerformanceZeroTime(t *testing.T) {
	if got := (Sample{}).Performance(); got != 0 {
		t.Errorf("Performance of zero sample = %v, want 0", got)
	}
}

func TestSampleAdd(t *testing.T) {
	a := Sample{Seconds: 1, Watts: 100}
	b := Sample{Seconds: 3, Watts: 200}
	sum := a.Add(b)
	if sum.Seconds != 4 {
		t.Errorf("combined time = %v, want 4", sum.Seconds)
	}
	// Energy should add exactly: 100 + 600 = 700 J.
	if !almost(sum.Energy(), 700, 1e-9) {
		t.Errorf("combined energy = %v, want 700", sum.Energy())
	}
	if !almost(sum.Watts, 175, 1e-9) {
		t.Errorf("combined power = %v, want 175", sum.Watts)
	}
}

func TestSampleAddZero(t *testing.T) {
	a := Sample{Seconds: 2, Watts: 50}
	if got := a.Add(Sample{}); got != a {
		t.Errorf("adding zero sample changed value: %v", got)
	}
	if got := (Sample{}).Add(Sample{}); got != (Sample{}) {
		t.Errorf("zero+zero = %v", got)
	}
}

// Property: Add conserves energy and time for arbitrary positive samples.
func TestSampleAddConservationProperty(t *testing.T) {
	f := func(t1, w1, t2, w2 uint16) bool {
		a := Sample{Seconds: float64(t1%1000) + 1, Watts: float64(w1%500) + 1}
		b := Sample{Seconds: float64(t2%1000) + 1, Watts: float64(w2%500) + 1}
		sum := a.Add(b)
		return almost(sum.Seconds, a.Seconds+b.Seconds, 1e-9) &&
			almost(sum.Energy(), a.Energy()+b.Energy(), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add is commutative.
func TestSampleAddCommutativeProperty(t *testing.T) {
	f := func(t1, w1, t2, w2 uint16) bool {
		a := Sample{Seconds: float64(t1%1000) + 1, Watts: float64(w1%500) + 1}
		b := Sample{Seconds: float64(t2%1000) + 1, Watts: float64(w2%500) + 1}
		x, y := a.Add(b), b.Add(a)
		return almost(x.Seconds, y.Seconds, 1e-9) && almost(x.Watts, y.Watts, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100, 88); !almost(got, 0.12, 1e-12) {
		t.Errorf("Improvement(100,88) = %v, want 0.12", got)
	}
	if got := Improvement(100, 110); !almost(got, -0.10, 1e-12) {
		t.Errorf("Improvement(100,110) = %v, want -0.10", got)
	}
	if got := Improvement(0, 5); got != 0 {
		t.Errorf("Improvement with zero baseline = %v, want 0", got)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(2, 1); got != 2 {
		t.Errorf("Speedup(2,1) = %v", got)
	}
	if got := Speedup(1, 0); !math.IsInf(got, 1) {
		t.Errorf("Speedup with zero time = %v, want +Inf", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); !almost(got, 4, 1e-12) {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean([]float64{5}); !almost(got, 5, 1e-12) {
		t.Errorf("GeoMean(5) = %v, want 5", got)
	}
	if got := GeoMean(nil); !math.IsNaN(got) {
		t.Errorf("GeoMean(nil) = %v, want NaN", got)
	}
	if got := GeoMean([]float64{1, -1}); !math.IsNaN(got) {
		t.Errorf("GeoMean with negative = %v, want NaN", got)
	}
}

// Property: geomean lies between min and max of positive inputs.
func TestGeoMeanBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := GeoMean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMeanImprovement(t *testing.T) {
	// Two apps at ratio 0.88 should report 12% average improvement.
	got := GeoMeanImprovement([]float64{0.88, 0.88})
	if !almost(got, 0.12, 1e-12) {
		t.Errorf("GeoMeanImprovement = %v, want 0.12", got)
	}
}

func TestMeanAndMaxAbs(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !almost(got, 2, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := MaxAbs([]float64{-3, 2, 1}); got != -3 {
		t.Errorf("MaxAbs = %v, want -3", got)
	}
	if got := MaxAbs(nil); got != 0 {
		t.Errorf("MaxAbs(nil) = %v", got)
	}
}

func TestED2FavorsPerformanceOverEnergy(t *testing.T) {
	// A config that halves power but doubles time must lose on ED2:
	// ED2 scales with t^3 via time but only linearly with power.
	fast := Sample{Seconds: 1, Watts: 200}
	slow := Sample{Seconds: 2, Watts: 100}
	if slow.ED2() <= fast.ED2() {
		t.Errorf("ED2: slow=%v fast=%v; ED2 should penalize slowdown", slow.ED2(), fast.ED2())
	}
	// But pure energy prefers neither (equal here).
	if !almost(slow.Energy(), fast.Energy(), 1e-9) {
		t.Errorf("energies should tie: %v vs %v", slow.Energy(), fast.Energy())
	}
}
