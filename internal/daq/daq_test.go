package daq

import (
	"math"
	"testing"
	"testing/quick"

	"harmonia/internal/power"
)

func rails(g, m, o float64) power.Rails { return power.Rails{GPU: g, Mem: m, Other: o} }

func TestExactEnergyIntegration(t *testing.T) {
	r := New(1000)
	r.Observe(2.0, rails(100, 50, 30))
	r.Observe(1.0, rails(60, 40, 30))
	e := r.Energy()
	if math.Abs(e.GPU-260) > 1e-9 || math.Abs(e.Mem-140) > 1e-9 || math.Abs(e.Other-90) > 1e-9 {
		t.Errorf("per-rail energy = %+v", e)
	}
	if math.Abs(e.Total()-490) > 1e-9 {
		t.Errorf("total = %v, want 490", e.Total())
	}
	if math.Abs(r.Now()-3.0) > 1e-12 {
		t.Errorf("Now = %v, want 3", r.Now())
	}
	if math.Abs(r.AveragePower()-490.0/3) > 1e-9 {
		t.Errorf("avg power = %v", r.AveragePower())
	}
}

func TestSampleStream(t *testing.T) {
	r := New(1000)
	r.Observe(0.0105, rails(100, 0, 0))
	// Samples at t=0, 1ms, ..., 10ms -> 11 samples.
	if got := len(r.Samples()); got != 11 {
		t.Fatalf("got %d samples, want 11", got)
	}
	for i, s := range r.Samples() {
		want := float64(i) * 0.001
		if math.Abs(s.TimeS-want) > 1e-12 {
			t.Errorf("sample %d at %v, want %v", i, s.TimeS, want)
		}
		if s.Rails.GPU != 100 {
			t.Errorf("sample %d rails = %+v", i, s.Rails)
		}
	}
}

func TestSamplingGridSpansIntervals(t *testing.T) {
	// Two 0.4ms intervals then one 0.4ms: the 1ms grid must not reset
	// per interval; the second sample lands in the third interval.
	r := New(1000)
	r.Observe(0.0004, rails(10, 0, 0))
	r.Observe(0.0004, rails(20, 0, 0))
	r.Observe(0.0004, rails(30, 0, 0))
	s := r.Samples()
	if len(s) != 2 {
		t.Fatalf("got %d samples, want 2", len(s))
	}
	if s[0].Rails.GPU != 10 || s[1].Rails.GPU != 30 {
		t.Errorf("samples = %+v", s)
	}
}

func TestSampledEnergyApproximatesExact(t *testing.T) {
	r := New(1000)
	// Long intervals: sampled and exact should agree within ~1%.
	r.Observe(1.7, rails(120, 60, 30))
	r.Observe(2.3, rails(80, 45, 30))
	exact := r.Energy().Total()
	sampled := r.SampledEnergy()
	if rel := math.Abs(sampled-exact) / exact; rel > 0.01 {
		t.Errorf("sampled %v vs exact %v (%.2f%% off)", sampled, exact, rel*100)
	}
}

func TestShortKernelsNotAliasedInExactEnergy(t *testing.T) {
	// 100 kernels of 50us each: the DAQ stream sees only a handful of
	// samples, but exact energy must be complete.
	r := New(1000)
	for i := 0; i < 100; i++ {
		r.Observe(50e-6, rails(200, 0, 0))
	}
	if got := r.Energy().Total(); math.Abs(got-200*0.005) > 1e-9 {
		t.Errorf("exact energy = %v, want 1.0", got)
	}
	if got := len(r.Samples()); got < 5 || got > 6 {
		t.Errorf("sample count = %d, want 5-6 (5ms span)", got)
	}
}

func TestIgnoresNonPositiveDurations(t *testing.T) {
	r := New(1000)
	r.Observe(-1, rails(100, 0, 0))
	r.Observe(0, rails(100, 0, 0))
	if r.Now() != 0 || len(r.Samples()) != 0 || r.Energy().Total() != 0 {
		t.Errorf("non-positive durations changed state: %v", r)
	}
	if r.AveragePower() != 0 {
		t.Errorf("avg power of empty trace = %v", r.AveragePower())
	}
}

func TestReset(t *testing.T) {
	r := New(1000)
	r.Observe(1, rails(100, 50, 30))
	r.Reset()
	if r.Now() != 0 || len(r.Samples()) != 0 || r.Energy().Total() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestDefaultRate(t *testing.T) {
	r := New(0)
	r.Observe(0.0101, rails(1, 0, 0))
	if got := len(r.Samples()); got != 11 {
		t.Errorf("default-rate samples = %d, want 11 (1 kHz)", got)
	}
}

func TestEnergyAdd(t *testing.T) {
	a := Energy{GPU: 1, Mem: 2, Other: 3}
	b := Energy{GPU: 10, Mem: 20, Other: 30}
	sum := a.Add(b)
	if sum != (Energy{GPU: 11, Mem: 22, Other: 33}) {
		t.Errorf("Add = %+v", sum)
	}
}

// Property: exact energy equals the sum of piecewise energies, and the
// sample count equals ceil(total/period) regardless of how the total
// duration is split into intervals.
func TestObserveSplitInvarianceProperty(t *testing.T) {
	f := func(chunks []uint8) bool {
		r := New(1000)
		total := 0.0
		for _, c := range chunks {
			d := float64(c%50) * 1e-4 // up to 4.9ms each
			r.Observe(d, rails(100, 0, 0))
			total += d
		}
		wantEnergy := 100 * total
		if math.Abs(r.Energy().Total()-wantEnergy) > 1e-9 {
			return false
		}
		wantSamples := 0
		if total > 0 {
			wantSamples = int(math.Ceil(total / 0.001))
			if math.Mod(total, 0.001) == 0 {
				wantSamples = int(total/0.001) + 0
			}
		}
		// Sample at t=0 always fires once any time passes; allow the
		// count to be within 1 of the ideal grid count.
		got := len(r.Samples())
		return got >= wantSamples-1 && got <= wantSamples+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRejectsCorruptRatesAndDurations(t *testing.T) {
	for _, rate := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -5} {
		r := New(rate)
		r.Observe(0.0101, rails(1, 0, 0))
		if got := len(r.Samples()); got != 11 {
			t.Errorf("New(%v): samples = %d, want 11 (fell back to 1 kHz)", rate, got)
		}
	}

	r := New(1000)
	for _, d := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		r.Observe(d, rails(100, 0, 0))
	}
	if r.Now() != 0 || r.Energy().Total() != 0 || len(r.Samples()) != 0 {
		t.Errorf("non-finite durations changed state: %v", r)
	}
}

func TestRejectsCorruptRails(t *testing.T) {
	bad := []power.Rails{
		rails(math.NaN(), 0, 0),
		rails(0, math.NaN(), 0),
		rails(0, 0, math.NaN()),
		rails(math.Inf(1), 0, 0),
		rails(-1, 0, 0),
		rails(0, -0.5, 0),
	}
	r := New(1000)
	for _, b := range bad {
		r.Observe(1, b)
	}
	if r.Now() != 0 || r.Energy().Total() != 0 || len(r.Samples()) != 0 {
		t.Errorf("corrupt rails changed state: %v", r)
	}
	// A clean interval after garbage still records normally.
	r.Observe(1, rails(100, 50, 30))
	if math.Abs(r.Energy().Total()-180) > 1e-9 {
		t.Errorf("energy after recovery = %v, want 180", r.Energy().Total())
	}
}

func TestSubPeriodIntervalsAccumulate(t *testing.T) {
	// Intervals far shorter than the sampling period: the grid must not
	// emit more than one sample per period boundary, and exact energy
	// must still integrate every sliver.
	r := New(1000)
	for i := 0; i < 1000; i++ {
		r.Observe(1e-5, rails(50, 0, 0)) // 10us x 1000 = 10ms
	}
	if got := r.Energy().Total(); math.Abs(got-50*0.01) > 1e-9 {
		t.Errorf("exact energy = %v, want 0.5", got)
	}
	if got := len(r.Samples()); got != 10 {
		t.Errorf("samples = %d, want 10 over a 10ms span", got)
	}
}

func TestDropHookLosesSamplesNotEnergy(t *testing.T) {
	r := New(1000)
	n := 0
	r.Drop = func() bool { n++; return n%2 == 0 } // drop every other sample
	r.Observe(0.010, rails(100, 0, 0))
	if got := len(r.Samples()); got != 5 {
		t.Errorf("samples = %d, want 5 of 10 (half dropped)", got)
	}
	if got := r.Dropped(); got != 5 {
		t.Errorf("Dropped = %d, want 5", got)
	}
	if math.Abs(r.Energy().Total()-1.0) > 1e-9 {
		t.Errorf("exact energy affected by drops: %v", r.Energy().Total())
	}
	r.Reset()
	if r.Dropped() != 0 {
		t.Error("Reset did not clear the dropped counter")
	}
}
