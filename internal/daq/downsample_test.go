package daq_test

// Cross-package test: DAQ acquisition dropouts must not shift the
// flight recorder's bucket boundaries. Buckets are indexed from each
// sample's absolute timestamp (floor(TimeS/res)), so a lost sample
// leaves its bucket thinner — or empty — but never slides later
// samples into earlier buckets the way a count-based scheme would.

import (
	"testing"

	"harmonia/internal/daq"
	"harmonia/internal/power"
	"harmonia/internal/timeline"
)

// trace drives r through a fixed three-phase power profile and returns
// its recorded samples.
func trace(r *daq.Recorder) []daq.Sample {
	r.Observe(0.010, power.Rails{GPU: 100, Mem: 40, Other: 10})
	r.Observe(0.005, power.Rails{GPU: 60, Mem: 80, Other: 10})
	r.Observe(0.010, power.Rails{GPU: 120, Mem: 30, Other: 10})
	return r.Samples()
}

func TestDropsDoNotShiftTimelineBuckets(t *testing.T) {
	clean := daq.New(daq.DefaultRateHz)
	cleanSamples := trace(clean)

	lossy := daq.New(daq.DefaultRateHz)
	n := 0
	lossy.Drop = func() bool { n++; return n%3 == 0 } // lose every third sample
	lossySamples := trace(lossy)

	if lossy.Dropped() == 0 {
		t.Fatal("drop hook never fired")
	}
	if len(lossySamples)+lossy.Dropped() != len(cleanSamples) {
		t.Fatalf("lossy kept %d + dropped %d, clean kept %d",
			len(lossySamples), lossy.Dropped(), len(cleanSamples))
	}
	// Surviving samples carry their original timestamps: the dropout
	// removes entries, it does not re-time the rest.
	j := 0
	for _, s := range lossySamples {
		for j < len(cleanSamples) && cleanSamples[j].TimeS != s.TimeS {
			j++
		}
		if j == len(cleanSamples) {
			t.Fatalf("lossy sample at t=%v not in the clean stream", s.TimeS)
		}
	}

	// Bucket the two streams at a coarser resolution. Every lossy
	// bucket must start at the same time as the clean bucket with the
	// same index, and hold a subset of its samples.
	const res = 0.004
	bucket := func(samples []daq.Sample) *timeline.Snapshot {
		rec := timeline.New(timeline.WithResolution(res))
		rec.StartRun("app", "pol")
		rec.ObserveSamples(samples)
		return rec.Snapshot()
	}
	cb, lb := bucket(cleanSamples), bucket(lossySamples)
	if len(lb.Power) > len(cb.Power) {
		t.Fatalf("lossy stream has %d buckets, clean %d", len(lb.Power), len(cb.Power))
	}
	droppedFromBuckets := 0
	for i, l := range lb.Power {
		c := cb.Power[i]
		if l.TimeS != c.TimeS {
			t.Fatalf("bucket %d starts at %v lossy vs %v clean — drops shifted boundaries", i, l.TimeS, c.TimeS)
		}
		if l.Samples > c.Samples {
			t.Fatalf("bucket %d has %d lossy samples but only %d clean", i, l.Samples, c.Samples)
		}
		droppedFromBuckets += c.Samples - l.Samples
	}
	// Any clean buckets past the lossy tail account for the rest.
	for _, c := range cb.Power[len(lb.Power):] {
		droppedFromBuckets += c.Samples
	}
	if droppedFromBuckets != lossy.Dropped() {
		t.Fatalf("buckets lost %d samples, recorder dropped %d", droppedFromBuckets, lossy.Dropped())
	}
}
