// Package daq emulates the paper's power-measurement instrumentation: a
// National Instruments data-acquisition card sampling the GPU card's
// power rails at 1 kHz (Section 6). A Recorder consumes (duration, rails)
// intervals from the simulation, produces the discrete 1 kHz sample
// stream an analyst would see, and integrates exact per-rail energy.
//
// Because the simulator knows the true piecewise-constant power, the
// Recorder tracks both the exact analytic energy (used for metrics, so
// short kernels are not aliased away) and the sampled stream (used for
// time-series figures and as a cross-check; the two agree closely for
// intervals long relative to the sampling period).
package daq

import (
	"fmt"
	"math"

	"harmonia/internal/power"
)

// Sample is one DAQ reading: the rail powers observed at an instant.
type Sample struct {
	// TimeS is the sample timestamp in seconds from recording start.
	TimeS float64
	// Rails is the instantaneous rail decomposition in watts.
	Rails power.Rails
}

// Energy is integrated per-rail energy in joules.
type Energy struct {
	GPU   float64
	Mem   float64
	Other float64
}

// Total returns total card energy in joules.
func (e Energy) Total() float64 { return e.GPU + e.Mem + e.Other }

// Add returns the sum of two energies.
func (e Energy) Add(o Energy) Energy {
	return Energy{GPU: e.GPU + o.GPU, Mem: e.Mem + o.Mem, Other: e.Other + o.Other}
}

// Recorder accumulates a power trace.
type Recorder struct {
	period     float64
	now        float64
	nextSample float64
	samples    []Sample
	exact      Energy
	dropped    int

	// Drop, when non-nil, is consulted once per due sample; returning
	// true loses that sample from the recorded stream (an acquisition
	// dropout). Exact integrated energy is unaffected — the card still
	// drew the power, the instrument just failed to log it.
	Drop func() bool
}

// DefaultRateHz is the paper's DAQ sampling rate.
const DefaultRateHz = 1000

// New returns a Recorder sampling at the given rate; rates that are
// zero, negative, NaN, or infinite use DefaultRateHz.
func New(rateHz float64) *Recorder {
	if rateHz <= 0 || math.IsNaN(rateHz) || math.IsInf(rateHz, 0) {
		rateHz = DefaultRateHz
	}
	return &Recorder{period: 1 / rateHz}
}

// Observe advances the trace by duration seconds during which the card
// drew the given constant rail powers. Non-positive or non-finite
// durations and rails containing NaN or negative power are rejected:
// they indicate a corrupted measurement interval, and folding them in
// would poison the energy integrals.
func (r *Recorder) Observe(duration float64, rails power.Rails) {
	if duration <= 0 || math.IsNaN(duration) || math.IsInf(duration, 0) {
		return
	}
	for _, w := range []float64{rails.GPU, rails.Mem, rails.Other} {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return
		}
	}
	r.exact.GPU += rails.GPU * duration
	r.exact.Mem += rails.Mem * duration
	r.exact.Other += rails.Other * duration

	end := r.now + duration
	for r.nextSample < end {
		if r.Drop != nil && r.Drop() {
			r.dropped++
		} else {
			r.samples = append(r.samples, Sample{TimeS: r.nextSample, Rails: rails})
		}
		r.nextSample += r.period
	}
	r.now = end
}

// Dropped returns how many due samples were lost to the Drop hook.
func (r *Recorder) Dropped() int { return r.dropped }

// Now returns the current trace time in seconds.
func (r *Recorder) Now() float64 { return r.now }

// Samples returns the recorded 1 kHz sample stream.
func (r *Recorder) Samples() []Sample { return r.samples }

// Energy returns the exact integrated per-rail energy.
func (r *Recorder) Energy() Energy { return r.exact }

// SampledEnergy integrates total card energy from the discrete sample
// stream (rectangle rule), as an analyst with only the DAQ trace would.
func (r *Recorder) SampledEnergy() float64 {
	sum := 0.0
	for _, s := range r.samples {
		sum += s.Rails.Card() * r.period
	}
	return sum
}

// AveragePower returns exact mean card power over the trace in watts.
func (r *Recorder) AveragePower() float64 {
	if r.now <= 0 {
		return 0
	}
	return r.exact.Total() / r.now
}

// Reset clears the trace.
func (r *Recorder) Reset() {
	r.now, r.nextSample, r.samples, r.exact = 0, 0, nil, Energy{}
	r.dropped = 0
}

func (r *Recorder) String() string {
	return fmt.Sprintf("daq: %.3fs, %d samples, %.1fJ (%.1fW avg)",
		r.now, len(r.samples), r.exact.Total(), r.AveragePower())
}
