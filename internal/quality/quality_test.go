package quality

import (
	"math"
	"sync"
	"testing"

	"harmonia/internal/core"
	"harmonia/internal/gpusim"
	"harmonia/internal/oracle"
	"harmonia/internal/policy"
	"harmonia/internal/power"
	"harmonia/internal/sensitivity"
	"harmonia/internal/session"
	"harmonia/internal/simcache"
	"harmonia/internal/timeline"
	"harmonia/internal/workloads"
)

var (
	predOnce sync.Once
	pred     *sensitivity.Predictor
)

func predictor() *sensitivity.Predictor {
	predOnce.Do(func() { pred = sensitivity.DefaultPredictor() })
	return pred
}

// lab is one test's shared simulator stack: a memoized runner so
// harmonia runs, oracle sweeps, and ground-truth measurements all share
// simulation results.
type lab struct {
	sim gpusim.Runner
	pow *power.Model
}

func newLab() lab {
	return lab{sim: simcache.For(gpusim.Default(), simcache.New()), pow: power.Default()}
}

// record runs app under pol with a flight recorder and returns the
// finished snapshot.
func (l lab) record(t *testing.T, pol policy.Policy, app *workloads.Application) *timeline.Snapshot {
	t.Helper()
	rec := timeline.New()
	sess := &session.Session{Sim: l.sim, Power: l.pow, Policy: pol, Timeline: rec}
	if _, err := sess.Run(app); err != nil {
		t.Fatal(err)
	}
	return rec.Snapshot()
}

func (l lab) engine(maxSamples int) *Engine {
	return NewEngine(Options{Sim: l.sim, Power: l.pow, MaxSamples: maxSamples})
}

// TestOracleRunHasZeroGap: analyzing a run driven BY the oracle against
// the oracle itself must measure (near) zero regret — the analyzer's
// self-consistency check.
func TestOracleRunHasZeroGap(t *testing.T) {
	l := newLab()
	app := workloads.ByName("LUD")
	snap := l.record(t, oracle.New(l.sim, l.pow, app), app)
	res, err := l.engine(0).Analyze(app, snap)
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleGap.Sampled == 0 {
		t.Fatal("no boundaries sampled")
	}
	// The session commands the oracle's choice through the hardware
	// envelope; tiny float differences aside, the gap must be ~0.
	if res.OracleGap.Gap > 1e-9 || res.OracleGap.Gap < -1e-9 {
		t.Fatalf("oracle-driven run's gap = %v, want ~0", res.OracleGap.Gap)
	}
}

// TestHarmoniaSuiteWithinOracleHeadline reproduces the paper's headline
// on the default suite: Harmonia's geomean ED² gain lands within a few
// percentage points of the exhaustive oracle's (Section 7.1, "within
// ~3%"; this reproduction records 4.6 points in EXPERIMENTS.md). The
// gap is computed exactly as the results study computes it — geomean of
// per-app ED² ratios over baseline, oracle minus Harmonia — but from
// flight recordings: actual ED² straight off the decision records,
// oracle ED² re-simulated per boundary by the quality engine.
func TestHarmoniaSuiteWithinOracleHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite oracle comparison")
	}
	l := newLab()
	// Sample every boundary: the gap is then exactly the run-level ED²
	// ratio the paper reports, not a strided estimate.
	eng := l.engine(1 << 20)
	agg := NewAggregator()
	logHM, logOR := 0.0, 0.0
	suite := workloads.Suite()
	for _, app := range suite {
		base := l.record(t, policy.NewBaseline(), app)
		var bE, bT float64
		for _, d := range base.Decisions {
			bE += d.EnergyJ
			bT += d.TimeS
		}
		baseED2 := bE * bT * bT

		pol := core.New(core.Options{Predictor: predictor()})
		res, err := eng.Analyze(app, l.record(t, pol, app))
		if err != nil {
			t.Fatal(err)
		}
		agg.Add(res)
		if res.OracleGap.Gap < -1e-9 {
			t.Errorf("%s: negative oracle gap %v (beat an exhaustive oracle?)", app.Name, res.OracleGap.Gap)
		}
		// XSBench's documented 48% gap (EXPERIMENTS.md) is the suite's
		// worst; anything beyond it means the analyzer or the controller
		// regressed.
		if res.OracleGap.Gap > 0.55 {
			t.Errorf("%s: oracle gap %.1f%% exceeds 55%%", app.Name, res.OracleGap.Gap*100)
		}
		logHM += math.Log(res.OracleGap.ActualED2 / baseED2)
		logOR += math.Log(res.OracleGap.OracleED2 / baseED2)
	}
	n := float64(len(suite))
	gainHM := 1 - math.Exp(logHM/n)
	gainOR := 1 - math.Exp(logOR/n)
	gapPP := gainOR - gainHM
	t.Logf("geomean ED2 gain: harmonia %.1f%%, oracle %.1f%%, gap %.1f points (paper: within ~3)",
		gainHM*100, gainOR*100, gapPP*100)
	if gapPP > 0.06 {
		t.Fatalf("oracle gap %.1f points exceeds the headline bound of 6", gapPP*100)
	}
	if gapPP < 0 {
		t.Fatalf("negative suite gap %.2f points", gapPP*100)
	}
	stats := agg.Snapshot()
	if stats.Runs != len(suite) || len(stats.Policies) != 1 {
		t.Fatalf("aggregate = %+v", stats)
	}
	ps := stats.Policies[0]
	if ps.Policy != "harmonia" || ps.GapRuns != stats.Runs {
		t.Fatalf("policy stats = %+v", ps)
	}
}

// TestConfusionMatrixAgainstGroundTruth: the controller's predicted
// bins are compared per boundary against measured sensitivity; most
// checks must agree (the paper's predictor classifies most kernels
// correctly), and the matrix must be internally consistent.
func TestConfusionMatrixAgainstGroundTruth(t *testing.T) {
	l := newLab()
	app := workloads.ByName("SRAD")
	snap := l.record(t, core.New(core.Options{Predictor: predictor()}), app)
	res, err := l.engine(-1).Analyze(app, snap)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Confusion
	if c.Checks == 0 {
		t.Fatal("no bin checks — controller annotations missing")
	}
	var fromCells, misFromCells int
	for _, cell := range c.Cells {
		fromCells += cell.N
		if cell.Truth != cell.Predicted {
			misFromCells += cell.N
		}
	}
	if fromCells != c.Checks || misFromCells != c.Misbinned {
		t.Fatalf("cells (%d/%d) disagree with totals (%d/%d)", fromCells, misFromCells, c.Checks, c.Misbinned)
	}
	if 2*c.Misbinned > c.Checks {
		t.Fatalf("misbinned %d of %d checks — predictor worse than a coin flip", c.Misbinned, c.Checks)
	}
	// MaxSamples < 0 disables gap analysis entirely.
	if res.OracleGap.Sampled != 0 {
		t.Fatal("negative MaxSamples must disable oracle-gap sampling")
	}
}

// TestFGStatsDitherAndConvergence exercises the action-stream digest on
// a synthetic stream: an fg→revert→freeze oscillation is a depth-2
// dither, and a trailing hold run means convergence.
func TestFGStatsDitherAndConvergence(t *testing.T) {
	decs := []timeline.Decision{
		{Kernel: "k", Source: "cg"},
		{Kernel: "k", Source: "fg"},
		{Kernel: "k", Source: "revert"},
		{Kernel: "k", Source: "freeze"},
		{Kernel: "k", Source: "hold"},
		{Kernel: "k", Source: "hold"},
	}
	st := fgStats(decs)
	if st.MaxDither != 2 {
		t.Fatalf("MaxDither = %d, want 2 (revert then freeze)", st.MaxDither)
	}
	if st.TailHolds != 2 || !st.Converged {
		t.Fatalf("TailHolds = %d, Converged = %v", st.TailHolds, st.Converged)
	}
	want := map[string]int{"cg": 1, "fg": 1, "revert": 1, "freeze": 1, "hold": 2}
	for _, ac := range st.Actions {
		if want[ac.Source] != ac.N {
			t.Fatalf("action census %v", st.Actions)
		}
		delete(want, ac.Source)
	}
	if len(want) != 0 {
		t.Fatalf("census missing %v", want)
	}

	// A run that ends on a move did not converge.
	if st := fgStats([]timeline.Decision{{Source: "hold"}, {Source: "fg"}}); st.Converged || st.TailHolds != 0 {
		t.Fatalf("move-tailed run reported converged: %+v", st)
	}
	// An unannotated run (baseline) holds throughout and "converges".
	if st := fgStats([]timeline.Decision{{}, {}}); !st.Converged || st.Actions[0].Source != "(none)" {
		t.Fatalf("unannotated stats = %+v", st)
	}
}

// TestChurnCountsTransitions: churn is transitions per boundary,
// including dropped events on both sides.
func TestChurnCountsTransitions(t *testing.T) {
	l := newLab()
	app := workloads.ByName("SRAD")
	snap := l.record(t, core.New(core.Options{Predictor: predictor()}), app)
	res, err := l.engine(-1).Analyze(app, snap)
	if err != nil {
		t.Fatal(err)
	}
	if res.Boundaries == 0 {
		t.Fatal("no boundaries recorded")
	}
	wantRate := float64(res.Churn.Transitions) / float64(res.Churn.Boundaries)
	if res.Churn.Rate != wantRate {
		t.Fatalf("churn rate %v, want %v", res.Churn.Rate, wantRate)
	}
	if res.Churn.Rate > 1 {
		t.Fatalf("churn rate %v exceeds one transition per boundary", res.Churn.Rate)
	}
	// A baseline run never moves the hardware.
	bsnap := l.record(t, policy.NewBaseline(), app)
	bres, err := l.engine(-1).Analyze(app, bsnap)
	if err != nil {
		t.Fatal(err)
	}
	if bres.Churn.Transitions != 0 || bres.Churn.Rate != 0 {
		t.Fatalf("baseline churn = %+v", bres.Churn)
	}
}

// TestAnalyzeNilInputs: nil engine, app, or snapshot error cleanly.
func TestAnalyzeNilInputs(t *testing.T) {
	l := newLab()
	app := workloads.ByName("SRAD")
	if _, err := (*Engine)(nil).Analyze(app, &timeline.Snapshot{}); err == nil {
		t.Fatal("nil engine must error")
	}
	if _, err := l.engine(0).Analyze(nil, &timeline.Snapshot{}); err == nil {
		t.Fatal("nil app must error")
	}
	if _, err := l.engine(0).Analyze(app, nil); err == nil {
		t.Fatal("nil snapshot must error")
	}
	var agg *Aggregator
	agg.Add(nil) // nil-safe
	if s := agg.Snapshot(); s.Runs != 0 {
		t.Fatal("nil aggregator snapshot not empty")
	}
}
