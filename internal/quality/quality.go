// Package quality computes online decision-quality metrics from a run's
// flight recording (internal/timeline): how close the policy's choices
// came to the exhaustive ED² oracle, how well its sensitivity bins
// matched ground truth, how the fine-grain loop behaved, and how much
// the hardware configuration churned.
//
// The analysis is pure measurement over an already-finished timeline —
// it never feeds back into a run — and it is deterministic: analyzing
// the same snapshot with the same engine twice yields identical
// results, so the aggregated statistics served by /v1/stats/quality are
// reproducible for a deterministic workload.
//
// Metric definitions:
//
//   - Oracle gap (the paper's "within ~3% of oracle" headline,
//     Section 7.1): every strideth kernel boundary is re-scored by the
//     exhaustive oracle. Energy and time are summed across the sampled
//     boundaries on both sides — actuals straight off the decision
//     records, oracle values re-simulated at oracle.Decide's choice —
//     and the gap is E·T² at the actual sums over E·T² at the oracle
//     sums, minus one. Aggregating before forming ED² reproduces the
//     paper's run-level metric (Report.ED2 is total energy times total
//     time squared), so exploration boundaries early in a run are
//     diluted exactly as they are in the headline number. 0 means
//     oracle-equal; 0.03 means 3% worse than the bound.
//
//   - Bin confusion: for every boundary whose decision record carries
//     sensitivity bins, the predicted bin of each tunable is compared
//     against ground truth — sensitivity.Measure on the same simulator,
//     binned by the paper's 0.30/0.70 thresholds. Cells count
//     truth→predicted pairs per tunable; Misbinned counts the
//     off-diagonal.
//
//   - FG convergence/dither: the action census (hold/cg/fg/revert/
//     freeze/...), the tail of consecutive holds the run settled into,
//     and the deepest fg→revert dither streak of any kernel.
//
//   - Config churn: hardware state transitions per kernel boundary.
package quality

import (
	"errors"
	"sort"
	"sync"

	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/oracle"
	"harmonia/internal/power"
	"harmonia/internal/sensitivity"
	"harmonia/internal/timeline"
	"harmonia/internal/workloads"
)

// DefaultMaxSamples bounds how many boundaries per run the oracle-gap
// analysis re-scores; each sampled boundary costs one exhaustive sweep
// (memoized when the engine's simulator is a simcache runner).
const DefaultMaxSamples = 8

// Options configures an Engine.
type Options struct {
	// Sim is the simulator to re-score sampled boundaries on; share the
	// run's memoizing runner so sweeps hit the cache. Required.
	Sim gpusim.Runner
	// Power is the board power model. Required.
	Power *power.Model
	// MaxSamples caps oracle-gap sampling per run: the stride is chosen
	// so at most this many boundaries are re-scored. Zero means
	// DefaultMaxSamples; negative disables the oracle-gap analysis.
	MaxSamples int
	// Workers bounds each oracle sweep's parallelism (0 = GOMAXPROCS).
	Workers int
}

// Engine analyzes timelines. Safe for concurrent use; the ground-truth
// sensitivity bins are measured once per kernel and cached.
type Engine struct {
	sim        gpusim.Runner
	pow        *power.Model
	maxSamples int
	workers    int

	mu    sync.Mutex
	truth map[string]sensitivity.Bins
}

// NewEngine returns a quality engine over the given simulator and power
// model.
func NewEngine(o Options) *Engine {
	max := o.MaxSamples
	if max == 0 {
		max = DefaultMaxSamples
	}
	return &Engine{
		sim:        o.Sim,
		pow:        o.Power,
		maxSamples: max,
		workers:    o.Workers,
		truth:      make(map[string]sensitivity.Bins),
	}
}

// OracleGap is the sampled ED² regret against the exhaustive oracle.
type OracleGap struct {
	// Sampled is how many boundaries were re-scored, every Stride-th.
	Sampled int `json:"sampled"`
	Stride  int `json:"stride"`
	// ActualED2/OracleED2 are E·T² over the sampled boundaries' summed
	// energy and time, at the configurations actually run vs the
	// oracle's choices — the run-level ED² the paper reports, restricted
	// to the sample.
	ActualED2 float64 `json:"actual_ed2"`
	OracleED2 float64 `json:"oracle_ed2"`
	// Gap is ActualED2/OracleED2 - 1 (0 = oracle-equal).
	Gap float64 `json:"gap"`
}

// Cell is one confusion-matrix entry: how often a tunable's true
// sensitivity bin was predicted as another (or the same) bin.
type Cell struct {
	Tunable   string `json:"tunable"`
	Truth     string `json:"truth"`
	Predicted string `json:"predicted"`
	N         int    `json:"n"`
}

// Pair renders the cell's bin pair ("HIGH->MED") — the misbin
// telemetry label.
func (c Cell) Pair() string { return c.Truth + "->" + c.Predicted }

// Confusion is the sensitivity bin confusion matrix of one run.
type Confusion struct {
	// Checks counts (boundary, tunable) comparisons; zero for policies
	// that do not predict sensitivities.
	Checks    int `json:"checks"`
	Misbinned int `json:"misbinned"`
	// Cells hold every observed truth→predicted pair, sorted by
	// (tunable, truth, predicted) for deterministic output.
	Cells []Cell `json:"cells,omitempty"`
}

// FGStats summarizes the controller's action stream.
type FGStats struct {
	// Actions is the per-source census, sorted by source name.
	Actions []timeline.ActionCount `json:"actions,omitempty"`
	// TailHolds is the run's settled tail: consecutive trailing
	// boundaries whose action was a plain hold (or unannotated).
	TailHolds int `json:"tail_holds"`
	// Converged reports that the run ended inside such a tail — the
	// controller had stopped moving the hardware before the run ended.
	Converged bool `json:"converged"`
	// MaxDither is the deepest fg→revert oscillation streak any kernel
	// exhibited.
	MaxDither int `json:"max_dither"`
}

// Churn is the configuration-churn rate.
type Churn struct {
	Transitions int `json:"transitions"`
	Boundaries  int `json:"boundaries"`
	// Rate is transitions per boundary (0 = the hardware never moved).
	Rate float64 `json:"rate"`
}

// Result is the decision-quality analysis of one run.
type Result struct {
	App        string    `json:"app"`
	Policy     string    `json:"policy"`
	Boundaries int       `json:"boundaries"`
	OracleGap  OracleGap `json:"oracle_gap"`
	Confusion  Confusion `json:"confusion"`
	FG         FGStats   `json:"fg"`
	Churn      Churn     `json:"churn"`
}

var errNoInput = errors.New("quality: nil application or snapshot")

// Analyze computes the decision-quality metrics of one run's timeline.
// app must be the application the timeline recorded (its kernels are
// re-simulated for the oracle gap and ground-truth bins).
func (e *Engine) Analyze(app *workloads.Application, snap *timeline.Snapshot) (*Result, error) {
	if e == nil || app == nil || snap == nil {
		return nil, errNoInput
	}
	kernels := make(map[string]*workloads.Kernel, len(app.Kernels))
	for _, k := range app.Kernels {
		kernels[k.Name] = k
	}
	res := &Result{
		App:        snap.App,
		Policy:     snap.Policy,
		Boundaries: len(snap.Decisions) + snap.DroppedDecisions,
	}
	res.OracleGap = e.oracleGap(app, kernels, snap.Decisions)
	res.Confusion = e.confusion(kernels, snap.Decisions)
	res.FG = fgStats(snap.Decisions)
	res.Churn = Churn{
		Transitions: len(snap.Transitions) + snap.DroppedTransitions,
		Boundaries:  res.Boundaries,
	}
	if res.Churn.Boundaries > 0 {
		res.Churn.Rate = float64(res.Churn.Transitions) / float64(res.Churn.Boundaries)
	}
	return res, nil
}

// oracleGap re-scores every strideth boundary against oracle.Decide.
func (e *Engine) oracleGap(app *workloads.Application, kernels map[string]*workloads.Kernel, decs []timeline.Decision) OracleGap {
	if e.maxSamples < 0 || len(decs) == 0 {
		return OracleGap{}
	}
	stride := 1
	if e.maxSamples > 0 && len(decs) > e.maxSamples {
		stride = (len(decs) + e.maxSamples - 1) / e.maxSamples
	}
	orc := oracle.New(e.sim, e.pow, app).WithWorkers(e.workers)
	g := OracleGap{Stride: stride}
	var actE, actT, orcE, orcT float64
	for i := 0; i < len(decs); i += stride {
		d := decs[i]
		k, ok := kernels[d.Kernel]
		if !ok {
			continue
		}
		best := orc.Decide(d.Kernel, d.Iter)
		oe, ot := e.score(k, d.Iter, best)
		actE += d.EnergyJ
		actT += d.TimeS
		orcE += oe
		orcT += ot
		g.Sampled++
	}
	g.ActualED2 = actE * actT * actT
	g.OracleED2 = orcE * orcT * orcT
	if g.OracleED2 > 0 {
		g.Gap = g.ActualED2/g.OracleED2 - 1
	}
	return g
}

// score simulates one invocation at cfg and returns its energy and
// time, reproducing the session's energy accounting (Rails.Card × time)
// so the gap compares like with like.
func (e *Engine) score(k *workloads.Kernel, iter int, cfg hw.Config) (energyJ, timeS float64) {
	r := e.sim.Run(k, iter, cfg)
	rails := e.pow.Rails(cfg, power.Activity{
		VALUBusyFrac:    r.Counters.VALUBusy / 100,
		MemUnitBusyFrac: r.Counters.MemUnitBusy / 100,
		AchievedGBs:     r.AchievedGBs,
	})
	return rails.Card() * r.Time, r.Time
}

// truthFor measures a kernel's ground-truth sensitivity bins, once.
func (e *Engine) truthFor(k *workloads.Kernel) sensitivity.Bins {
	e.mu.Lock()
	b, ok := e.truth[k.Name]
	e.mu.Unlock()
	if ok {
		return b
	}
	m := sensitivity.Measure(e.sim, k)
	b = sensitivity.Bins{
		CUs:     sensitivity.BinOf(m.CUs),
		CUFreq:  sensitivity.BinOf(m.CUFreq),
		MemFreq: sensitivity.BinOf(m.Bandwidth),
	}
	e.mu.Lock()
	e.truth[k.Name] = b
	e.mu.Unlock()
	return b
}

// confusion compares every annotated boundary's predicted bins against
// measured ground truth.
func (e *Engine) confusion(kernels map[string]*workloads.Kernel, decs []timeline.Decision) Confusion {
	counts := make(map[Cell]int)
	var c Confusion
	note := func(tunable, truth, pred string) {
		c.Checks++
		if truth != pred {
			c.Misbinned++
		}
		counts[Cell{Tunable: tunable, Truth: truth, Predicted: pred}]++
	}
	for _, d := range decs {
		if d.Bins == nil {
			continue
		}
		k, ok := kernels[d.Kernel]
		if !ok {
			continue
		}
		truth := e.truthFor(k)
		note("cus", truth.CUs.String(), d.Bins.CUs)
		note("cu_freq", truth.CUFreq.String(), d.Bins.CUFreq)
		note("mem_freq", truth.MemFreq.String(), d.Bins.MemFreq)
	}
	c.Cells = make([]Cell, 0, len(counts))
	for cell, n := range counts {
		cell.N = n
		c.Cells = append(c.Cells, cell) //lint:ignore nondeterminism cells are sorted before use
	}
	sort.Slice(c.Cells, func(i, j int) bool {
		a, b := c.Cells[i], c.Cells[j]
		if a.Tunable != b.Tunable {
			return a.Tunable < b.Tunable
		}
		if a.Truth != b.Truth {
			return a.Truth < b.Truth
		}
		return a.Predicted < b.Predicted
	})
	return c
}

// fgStats digests the action stream.
func fgStats(decs []timeline.Decision) FGStats {
	var st FGStats
	counts := make(map[string]int)
	// Dither streaks are per kernel: an fg step answered by a revert
	// deepens the streak; a hold or cg jump resets it.
	streak := make(map[string]int)
	prev := make(map[string]string)
	lastMove := -1
	for i, d := range decs {
		src := d.Source
		if src == "" {
			src = "(none)"
		}
		counts[src]++
		switch src {
		case "cg", "fg", "revert", "freeze":
			lastMove = i
		}
		switch src {
		case "revert", "freeze":
			if prev[d.Kernel] == "fg" || prev[d.Kernel] == "revert" || prev[d.Kernel] == "freeze" {
				streak[d.Kernel]++
			} else {
				streak[d.Kernel] = 1
			}
			if streak[d.Kernel] > st.MaxDither {
				st.MaxDither = streak[d.Kernel]
			}
		case "hold", "cg":
			streak[d.Kernel] = 0
		}
		prev[d.Kernel] = src
	}
	st.TailHolds = len(decs) - 1 - lastMove
	if lastMove < 0 {
		st.TailHolds = len(decs)
	}
	st.Converged = len(decs) > 0 && st.TailHolds > 0
	srcs := make([]string, 0, len(counts))
	for s := range counts {
		srcs = append(srcs, s) //lint:ignore nondeterminism keys are sorted before use
	}
	sort.Strings(srcs)
	for _, s := range srcs {
		st.Actions = append(st.Actions, timeline.ActionCount{Source: s, N: counts[s]})
	}
	return st
}
