package quality

import (
	"sort"
	"sync"

	"harmonia/internal/timeline"
)

// Aggregator accumulates per-run quality results into per-policy
// statistics, the backing store of /v1/stats/quality. Safe for
// concurrent use.
type Aggregator struct {
	mu       sync.Mutex
	runs     int
	policies map[string]*policyAgg
}

type policyAgg struct {
	runs, boundaries, transitions int
	gapRuns                       int
	actualED2, oracleED2          float64
	gapSum                        float64
	checks, misbinned             int
	maxDither                     int
	converged                     int
	actions                       map[string]int
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{policies: make(map[string]*policyAgg)}
}

// Add folds one run's analysis into the statistics. Nil-safe on both
// sides.
func (a *Aggregator) Add(r *Result) {
	if a == nil || r == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.runs++
	p := a.policies[r.Policy]
	if p == nil {
		p = &policyAgg{actions: make(map[string]int)}
		a.policies[r.Policy] = p
	}
	p.runs++
	p.boundaries += r.Boundaries
	p.transitions += r.Churn.Transitions
	if r.OracleGap.Sampled > 0 {
		p.gapRuns++
		p.actualED2 += r.OracleGap.ActualED2
		p.oracleED2 += r.OracleGap.OracleED2
		p.gapSum += r.OracleGap.Gap
	}
	p.checks += r.Confusion.Checks
	p.misbinned += r.Confusion.Misbinned
	if r.FG.MaxDither > p.maxDither {
		p.maxDither = r.FG.MaxDither
	}
	if r.FG.Converged {
		p.converged++
	}
	for _, ac := range r.FG.Actions {
		p.actions[ac.Source] += ac.N
	}
}

// PolicyStats is one policy's aggregated decision quality.
type PolicyStats struct {
	Policy      string `json:"policy"`
	Runs        int    `json:"runs"`
	Boundaries  int    `json:"boundaries"`
	Transitions int    `json:"transitions"`
	// OracleGapMean averages the per-run gaps; OracleGapPooled pools
	// the sampled ED² sums across runs before taking the ratio. Both
	// cover only runs where gap sampling ran.
	GapRuns         int     `json:"gap_runs"`
	OracleGapMean   float64 `json:"oracle_gap_mean"`
	OracleGapPooled float64 `json:"oracle_gap_pooled"`
	BinChecks       int     `json:"bin_checks"`
	Misbinned       int     `json:"misbinned"`
	MisbinRate      float64 `json:"misbin_rate"`
	ChurnRate       float64 `json:"churn_rate"`
	MaxDither       int     `json:"max_dither"`
	ConvergedRuns   int     `json:"converged_runs"`
	// Actions is the pooled action census, sorted by source.
	Actions []timeline.ActionCount `json:"actions,omitempty"`
}

// Stats is the aggregator's deterministic snapshot: policies sorted by
// name, action censuses sorted by source.
type Stats struct {
	Runs     int           `json:"runs_analyzed"`
	Policies []PolicyStats `json:"policies"`
}

// Snapshot returns the current statistics.
func (a *Aggregator) Snapshot() Stats {
	if a == nil {
		return Stats{Policies: []PolicyStats{}}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := Stats{Runs: a.runs, Policies: make([]PolicyStats, 0, len(a.policies))}
	names := make([]string, 0, len(a.policies))
	for name := range a.policies {
		names = append(names, name) //lint:ignore nondeterminism keys are sorted before use
	}
	sort.Strings(names)
	for _, name := range names {
		p := a.policies[name]
		ps := PolicyStats{
			Policy:        name,
			Runs:          p.runs,
			Boundaries:    p.boundaries,
			Transitions:   p.transitions,
			GapRuns:       p.gapRuns,
			BinChecks:     p.checks,
			Misbinned:     p.misbinned,
			MaxDither:     p.maxDither,
			ConvergedRuns: p.converged,
		}
		if p.gapRuns > 0 {
			ps.OracleGapMean = p.gapSum / float64(p.gapRuns)
		}
		if p.oracleED2 > 0 {
			ps.OracleGapPooled = p.actualED2/p.oracleED2 - 1
		}
		if p.checks > 0 {
			ps.MisbinRate = float64(p.misbinned) / float64(p.checks)
		}
		if p.boundaries > 0 {
			ps.ChurnRate = float64(p.transitions) / float64(p.boundaries)
		}
		srcs := make([]string, 0, len(p.actions))
		for s := range p.actions {
			srcs = append(srcs, s) //lint:ignore nondeterminism keys are sorted before use
		}
		sort.Strings(srcs)
		for _, s := range srcs {
			ps.Actions = append(ps.Actions, timeline.ActionCount{Source: s, N: p.actions[s]})
		}
		out.Policies = append(out.Policies, ps)
	}
	return out
}
