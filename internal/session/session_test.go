package session

import (
	"math"
	"testing"

	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/policy"
	"harmonia/internal/workloads"
)

func TestRunBaselineProducesCompleteReport(t *testing.T) {
	app := workloads.LUD()
	rep, err := New(policy.NewBaseline()).Run(app)
	if err != nil {
		t.Fatal(err)
	}
	if rep.App != "LUD" || rep.Policy != "baseline" {
		t.Errorf("report identity = %s/%s", rep.App, rep.Policy)
	}
	wantRuns := len(app.Kernels) * app.Iterations
	if len(rep.Runs) != wantRuns {
		t.Fatalf("got %d runs, want %d", len(rep.Runs), wantRuns)
	}
	if rep.TotalTime() <= 0 || rep.TotalEnergy() <= 0 {
		t.Errorf("degenerate totals: %v s, %v J", rep.TotalTime(), rep.TotalEnergy())
	}
	if rep.AveragePower() < 50 || rep.AveragePower() > 300 {
		t.Errorf("average power = %v W implausible", rep.AveragePower())
	}
	if rep.ED2() <= 0 || rep.ED() <= 0 {
		t.Errorf("bad efficiency metrics: ED2=%v ED=%v", rep.ED2(), rep.ED())
	}
}

func TestEnergyMatchesRunSum(t *testing.T) {
	rep, err := New(policy.NewBaseline()).Run(workloads.Sort())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, run := range rep.Runs {
		sum += run.Sample().Energy()
	}
	if rel := math.Abs(sum-rep.TotalEnergy()) / rep.TotalEnergy(); rel > 1e-9 {
		t.Errorf("per-run energy %v != integrated %v", sum, rep.TotalEnergy())
	}
}

func TestDAQTracePresent(t *testing.T) {
	rep, err := New(policy.NewBaseline()).Run(workloads.DeviceMemory())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trace) == 0 {
		t.Fatal("no DAQ samples recorded")
	}
	// Sample count should approximate 1 kHz x total time.
	want := rep.TotalTime() * 1000
	got := float64(len(rep.Trace))
	if got < want*0.9-2 || got > want*1.1+2 {
		t.Errorf("trace has %v samples for %.3fs, want ~%.0f", got, rep.TotalTime(), want)
	}
}

func TestBaselineResidencyIsAllMax(t *testing.T) {
	rep, err := New(policy.NewBaseline()).Run(workloads.CoMD())
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Residency(hw.TunableMemFreq)
	if len(res) != 1 {
		t.Fatalf("baseline memory residency = %v, want single state", res)
	}
	if frac := res[int(hw.MaxMemFreq)]; math.Abs(frac-1) > 1e-9 {
		t.Errorf("residency at max = %v, want 1", frac)
	}
}

func TestResidencySumsToOne(t *testing.T) {
	rep, err := New(policy.NewFixed(hw.MinConfig())).Run(workloads.SRAD())
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range hw.Tunables() {
		sum := 0.0
		for _, frac := range rep.Residency(tu) {
			sum += frac
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%v residency sums to %v", tu, sum)
		}
	}
}

func TestKernelResidencyAndSample(t *testing.T) {
	app := workloads.SRAD()
	rep, err := New(policy.NewBaseline()).Run(app)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.KernelSample("SRAD.Main")
	if s.Seconds <= 0 {
		t.Error("kernel sample has no time")
	}
	res := rep.KernelResidency("SRAD.Main", hw.TunableCUs)
	sum := 0.0
	for _, frac := range res {
		sum += frac
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("kernel residency sums to %v", sum)
	}
	if got := rep.KernelResidency("no.such", hw.TunableCUs); len(got) != 0 {
		t.Errorf("residency of unknown kernel = %v", got)
	}
	if got := rep.KernelSample("no.such"); got.Seconds != 0 {
		t.Errorf("sample of unknown kernel = %v", got)
	}
}

func TestRunRejectsInvalidApplication(t *testing.T) {
	if _, err := New(policy.NewBaseline()).Run(&workloads.Application{Name: "x"}); err == nil {
		t.Error("invalid application accepted")
	}
}

type badPolicy struct{ *policy.Baseline }

func (badPolicy) Decide(string, int) hw.Config { return hw.Config{} }

func TestRunRejectsInvalidPolicyConfig(t *testing.T) {
	s := New(badPolicy{Baseline: policy.NewBaseline()})
	if _, err := s.Run(workloads.MaxFlops()); err == nil {
		t.Error("invalid policy config accepted")
	}
}

func TestCompare(t *testing.T) {
	cmp, err := Compare(workloads.MaxFlops(), map[string]func() policy.Policy{
		"min": func() policy.Policy { return policy.NewFixed(hw.MinConfig()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.App != "MaxFlops" {
		t.Errorf("app = %q", cmp.App)
	}
	minS, ok := cmp.Policies["min"]
	if !ok {
		t.Fatal("missing policy result")
	}
	// The minimum config must be far slower than baseline for MaxFlops.
	if minS.Seconds < cmp.Baseline.Seconds*5 {
		t.Errorf("min config only %vx slower", minS.Seconds/cmp.Baseline.Seconds)
	}
	// But draw less power.
	if minS.Watts >= cmp.Baseline.Watts {
		t.Errorf("min config power %v >= baseline %v", minS.Watts, cmp.Baseline.Watts)
	}
}

func TestSessionDeterminism(t *testing.T) {
	run := func() float64 {
		rep, err := New(policy.NewBaseline()).Run(workloads.Graph500())
		if err != nil {
			t.Fatal(err)
		}
		return rep.ED2()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic session: %v vs %v", a, b)
	}
}

func TestRunRecordsConfigsFromPolicy(t *testing.T) {
	cfg := hw.Config{
		Compute: hw.ComputeConfig{CUs: 8, Freq: 600},
		Memory:  hw.MemConfig{BusFreq: 775},
	}
	rep, err := New(policy.NewFixed(cfg)).Run(workloads.MaxFlops())
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range rep.Runs {
		if run.Config != cfg {
			t.Fatalf("run config = %v, want %v", run.Config, cfg)
		}
		if run.Result.Config != cfg {
			t.Fatalf("result config = %v, want %v", run.Result.Config, cfg)
		}
	}
}

var _ = gpusim.Default // keep import for badPolicy embedding clarity

// TestED2BucketEdges pins the documented histogram resolution: two
// buckets per decade over ~1e0..1e6, i.e. 13 upper bounds at
// 10^0, 10^0.5, ..., 10^6. The seed shipped ExponentialBuckets(1e-2,
// 10, 9) — one bucket per decade over 1e-2..1e6 — half the stated
// resolution over the wrong range.
func TestED2BucketEdges(t *testing.T) {
	if len(ed2Buckets) != 13 {
		t.Fatalf("ed2Buckets has %d edges, want 13", len(ed2Buckets))
	}
	for i, edge := range ed2Buckets {
		want := math.Pow(10, float64(i)/2)
		if diff := math.Abs(edge-want) / want; diff > 1e-9 {
			t.Errorf("edge %d = %v, want 10^%.1f = %v (rel err %g)", i, edge, float64(i)/2, want, diff)
		}
	}
	if ed2Buckets[0] != 1 || math.Abs(ed2Buckets[12]-1e6)/1e6 > 1e-9 {
		t.Errorf("bucket range [%v, %v], want [1e0, 1e6]", ed2Buckets[0], ed2Buckets[12])
	}
	// Adjacent edges differ by a factor of sqrt(10): two per decade.
	for i := 1; i < len(ed2Buckets); i++ {
		ratio := ed2Buckets[i] / ed2Buckets[i-1]
		if math.Abs(ratio-math.Sqrt(10)) > 1e-9 {
			t.Errorf("edge ratio %d = %v, want sqrt(10)", i, ratio)
		}
	}
}
