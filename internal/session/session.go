// Package session executes applications on the simulated platform under
// a power-management policy, reproducing the paper's measurement loop:
// kernels run iteration by iteration, the policy is consulted at every
// kernel boundary (Section 5.1), power is sampled at 1 kHz by the DAQ
// (Section 6), and the report aggregates the timing, energy, power-rail,
// and configuration-residency data the result figures are built from.
package session

import (
	"fmt"

	"harmonia/internal/daq"
	"harmonia/internal/faults"
	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/metrics"
	"harmonia/internal/policy"
	"harmonia/internal/power"
	"harmonia/internal/workloads"
)

// Session binds a simulator, a power model, and a policy.
type Session struct {
	Sim    *gpusim.Model
	Power  *power.Model
	Policy policy.Policy
	// DAQRateHz is the power sampling rate; zero uses the paper's 1 kHz.
	DAQRateHz float64
	// Faults, when non-nil, injects platform faults between the
	// simulator and what the policy and DAQ observe: commanded
	// configurations may fail to latch or be thermally throttled, the
	// policy's monitoring samples may be noisy or stale, and DAQ trace
	// samples may drop. The report always records the true physics (the
	// configuration actually run, exact time and energy). Injectors are
	// stateful: use a fresh one per run.
	Faults *faults.Injector
}

// New returns a session with default simulator and power model.
func New(p policy.Policy) *Session {
	return &Session{Sim: gpusim.Default(), Power: power.Default(), Policy: p}
}

// KernelRun records one kernel invocation.
type KernelRun struct {
	Kernel string
	Iter   int
	// Config is the configuration the hardware actually ran at.
	Config hw.Config
	// Commanded is the configuration the policy asked for; it differs
	// from Config only when fault injection made a transition fail or a
	// thermal throttle override the command.
	Commanded hw.Config
	Result    gpusim.Result
	Rails     power.Rails
}

// Sample returns the invocation as a metrics sample (time at card power).
func (r KernelRun) Sample() metrics.Sample {
	return metrics.Sample{Seconds: r.Result.Time, Watts: r.Rails.Card()}
}

// Report is the outcome of running one application under one policy.
type Report struct {
	App    string
	Policy string
	Runs   []KernelRun
	// Energy is the exact integrated per-rail energy.
	Energy daq.Energy
	// Trace is the DAQ's 1 kHz power sample stream.
	Trace []daq.Sample
}

// Run executes the application to completion and returns the report.
func (s *Session) Run(app *workloads.Application) (*Report, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	rec := daq.New(s.DAQRateHz)
	if s.Faults != nil {
		rec.Drop = s.Faults.DropDAQSample
	}
	rep := &Report{App: app.Name, Policy: s.Policy.Name()}
	for iter := 0; iter < app.Iterations; iter++ {
		for _, k := range app.Kernels {
			cfg := s.Policy.Decide(k.Name, iter)
			if !cfg.Valid() {
				return nil, fmt.Errorf("session: policy %s returned invalid config %v for %s",
					s.Policy.Name(), cfg, k.Name)
			}
			actual := cfg
			if s.Faults != nil {
				actual = s.Faults.ApplyConfig(cfg)
			}
			res := s.Sim.Run(k, iter, actual)
			rails := s.Power.Rails(actual, power.Activity{
				VALUBusyFrac:    res.Counters.VALUBusy / 100,
				MemUnitBusyFrac: res.Counters.MemUnitBusy / 100,
				AchievedGBs:     res.AchievedGBs,
			})
			rec.Observe(res.Time, rails)
			obs := res
			if s.Faults != nil {
				obs = s.Faults.Observation(k.Name, res)
			}
			s.Policy.Observe(k.Name, iter, obs)
			rep.Runs = append(rep.Runs, KernelRun{
				Kernel: k.Name, Iter: iter, Config: actual, Commanded: cfg, Result: res, Rails: rails,
			})
		}
	}
	rep.Energy = rec.Energy()
	rep.Trace = rec.Samples()
	return rep, nil
}

// TotalTime returns application execution time in seconds.
func (r *Report) TotalTime() float64 {
	sum := 0.0
	for _, run := range r.Runs {
		sum += run.Result.Time
	}
	return sum
}

// TotalEnergy returns total card energy in joules.
func (r *Report) TotalEnergy() float64 { return r.Energy.Total() }

// AveragePower returns mean card power in watts.
func (r *Report) AveragePower() float64 {
	t := r.TotalTime()
	if t <= 0 {
		return 0
	}
	return r.TotalEnergy() / t
}

// Sample returns the whole run as a metrics sample.
func (r *Report) Sample() metrics.Sample {
	return metrics.Sample{Seconds: r.TotalTime(), Watts: r.AveragePower()}
}

// ED2 returns the application's energy-delay-squared product.
func (r *Report) ED2() float64 { return r.Sample().ED2() }

// ED returns the application's energy-delay product.
func (r *Report) ED() float64 { return r.Sample().ED() }

// KernelSample aggregates the runs of one kernel into a metrics sample.
func (r *Report) KernelSample(kernel string) metrics.Sample {
	var out metrics.Sample
	for _, run := range r.Runs {
		if run.Kernel == kernel {
			out = out.Add(run.Sample())
		}
	}
	return out
}

// Residency returns the fraction of execution time each value of the
// tunable was in effect (the quantity of Figures 15-16). Keys are tunable
// values (CU count, or MHz).
func (r *Report) Residency(t hw.Tunable) map[int]float64 {
	total := r.TotalTime()
	out := make(map[int]float64)
	if total <= 0 {
		return out
	}
	for _, run := range r.Runs {
		out[t.Value(run.Config)] += run.Result.Time / total
	}
	return out
}

// KernelResidency is Residency restricted to one kernel's invocations.
func (r *Report) KernelResidency(kernel string, t hw.Tunable) map[int]float64 {
	total := 0.0
	for _, run := range r.Runs {
		if run.Kernel == kernel {
			total += run.Result.Time
		}
	}
	out := make(map[int]float64)
	if total <= 0 {
		return out
	}
	for _, run := range r.Runs {
		if run.Kernel == kernel {
			out[t.Value(run.Config)] += run.Result.Time / total
		}
	}
	return out
}

// Comparison holds one application's results under the evaluated policies,
// normalized the way the paper's Figures 10-13 are: ratios of the policy
// metric to the baseline metric.
type Comparison struct {
	App      string
	Baseline metrics.Sample
	Policies map[string]metrics.Sample
}

// Compare runs the application under the baseline and each given policy
// factory, returning the comparison. Policies are constructed fresh per
// application so no state leaks between apps.
func Compare(app *workloads.Application, factories map[string]func() policy.Policy) (*Comparison, error) {
	base, err := New(policy.NewBaseline()).Run(app)
	if err != nil {
		return nil, err
	}
	cmp := &Comparison{
		App:      app.Name,
		Baseline: base.Sample(),
		Policies: make(map[string]metrics.Sample),
	}
	for name, factory := range factories {
		rep, err := New(factory()).Run(app)
		if err != nil {
			return nil, err
		}
		cmp.Policies[name] = rep.Sample()
	}
	return cmp, nil
}
