// Package session executes applications on the simulated platform under
// a power-management policy, reproducing the paper's measurement loop:
// kernels run iteration by iteration, the policy is consulted at every
// kernel boundary (Section 5.1), power is sampled at 1 kHz by the DAQ
// (Section 6), and the report aggregates the timing, energy, power-rail,
// and configuration-residency data the result figures are built from.
package session

import (
	"context"
	"fmt"
	"math"

	"harmonia/internal/daq"
	"harmonia/internal/faults"
	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/metrics"
	"harmonia/internal/policy"
	"harmonia/internal/power"
	"harmonia/internal/telemetry"
	"harmonia/internal/timeline"
	"harmonia/internal/trace"
	"harmonia/internal/workloads"
)

// Session binds a simulator, a power model, and a policy.
type Session struct {
	// Sim simulates kernel invocations: the raw interval model, or a
	// memoizing simcache runner (bit-identical results either way).
	Sim    gpusim.Runner
	Power  *power.Model
	Policy policy.Policy
	// DAQRateHz is the power sampling rate; zero uses the paper's 1 kHz.
	DAQRateHz float64
	// Faults, when non-nil, injects platform faults between the
	// simulator and what the policy and DAQ observe: commanded
	// configurations may fail to latch or be thermally throttled, the
	// policy's monitoring samples may be noisy or stale, and DAQ trace
	// samples may drop. The report always records the true physics (the
	// configuration actually run, exact time and energy). Injectors are
	// stateful: use a fresh one per run.
	Faults *faults.Injector
	// Telemetry, when non-nil, receives run/kernel/ED² instrumentation
	// (see the harmonia_* metric families below). Recording is pure
	// observation: it never perturbs the simulated physics, so a run
	// with telemetry is bit-identical to one without.
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, records the run as a span tree: one run span
	// (nested under the recorder's ambient parent, if any), a kernel
	// span per invocation, and decide/simulate/observe phase spans under
	// it. Policies implementing trace.Traceable get the recorder
	// attached at run start so their decision spans nest under the
	// active phase. Like Telemetry, tracing is pure observation — a
	// traced run's Report is bit-identical to an untraced one.
	Tracer *trace.Recorder
	// Timeline, when non-nil, flight-records the run: the DAQ power
	// stream folded into bounded buckets, one decision record per
	// kernel boundary (annotated by the policy when it implements
	// timeline.Annotator), and configuration transitions. Policies
	// implementing timeline.Attachable are attached at run start.
	// Like Tracer, the recorder is pure observation — a recorded run's
	// Report is bit-identical to an unrecorded one, and the disabled
	// path costs one nil check per boundary.
	Timeline *timeline.Recorder
}

// Telemetry metric families recorded by RunContext. The policy label is
// the policy's Name(); its cardinality is bounded by the policies a
// deployment actually serves.
const (
	MetricRunsStarted       = "harmonia_runs_started_total"
	MetricRunsCompleted     = "harmonia_runs_completed_total"
	MetricRunsFailed        = "harmonia_runs_failed_total"
	MetricRunsCanceled      = "harmonia_runs_canceled_total"
	MetricKernelInvocations = "harmonia_kernel_invocations_total"
	MetricSimulatedSeconds  = "harmonia_simulated_seconds_total"
	MetricRunED2            = "harmonia_run_ed2"
)

// ed2Buckets spans the suite's observed ED² range (~1e0 .. ~1e6 J·s²)
// with two buckets per decade: upper bounds at 10^0, 10^0.5, …, 10^6
// (13 edges, factor √10). A factor-10 series would give only one bucket
// per decade — half the stated resolution.
var ed2Buckets = telemetry.ExponentialBuckets(1, math.Sqrt(10), 13)

// instruments bundles the session's telemetry handles; the zero value
// (nil registry) is a no-op.
type instruments struct {
	started, completed, failed *telemetry.Counter
	canceled                   *telemetry.Counter
	kernels, simSeconds        *telemetry.Counter
	ed2                        *telemetry.Histogram
}

// instrumentsFor resolves the per-policy instruments, or no-ops when no
// registry is attached.
func (s *Session) instrumentsFor() instruments {
	if s.Telemetry == nil {
		return instruments{}
	}
	pol := s.Policy.Name()
	r := s.Telemetry
	return instruments{
		started:    r.CounterVec(MetricRunsStarted, "Application runs started.", "policy").With(pol),
		completed:  r.CounterVec(MetricRunsCompleted, "Application runs completed.", "policy").With(pol),
		failed:     r.CounterVec(MetricRunsFailed, "Application runs failed.", "policy").With(pol),
		canceled:   r.CounterVec(MetricRunsCanceled, "Application runs canceled by their context (shutdown, deadline, or a gone caller) — not backend failures.", "policy").With(pol),
		kernels:    r.CounterVec(MetricKernelInvocations, "Kernel invocations simulated.", "policy").With(pol),
		simSeconds: r.CounterVec(MetricSimulatedSeconds, "Simulated GPU execution seconds.", "policy").With(pol),
		ed2:        r.HistogramVec(MetricRunED2, "Per-run energy-delay-squared product (J*s^2).", ed2Buckets, "policy").With(pol),
	}
}

// New returns a session with default simulator and power model.
func New(p policy.Policy) *Session {
	return &Session{Sim: gpusim.Default(), Power: power.Default(), Policy: p}
}

// KernelRun records one kernel invocation.
type KernelRun struct {
	Kernel string
	Iter   int
	// Config is the configuration the hardware actually ran at.
	Config hw.Config
	// Commanded is the configuration the policy asked for; it differs
	// from Config only when fault injection made a transition fail or a
	// thermal throttle override the command.
	Commanded hw.Config
	Result    gpusim.Result
	Rails     power.Rails
}

// Sample returns the invocation as a metrics sample (time at card power).
func (r KernelRun) Sample() metrics.Sample {
	return metrics.Sample{Seconds: r.Result.Time, Watts: r.Rails.Card()}
}

// Report is the outcome of running one application under one policy.
type Report struct {
	App    string
	Policy string
	Runs   []KernelRun
	// Energy is the exact integrated per-rail energy.
	Energy daq.Energy
	// Trace is the DAQ's 1 kHz power sample stream.
	Trace []daq.Sample
}

// Run executes the application to completion and returns the report.
// It is RunContext with a background context.
func (s *Session) Run(app *workloads.Application) (*Report, error) {
	return s.RunContext(context.Background(), app)
}

// RunContext executes the application to completion and returns the
// report. Cancellation is checked at every kernel-invocation boundary —
// the same granularity at which the policy is consulted — so a canceled
// context stops the run before the next kernel launches and returns the
// context's error (no partial report).
func (s *Session) RunContext(ctx context.Context, app *workloads.Application) (*Report, error) {
	ins := s.instrumentsFor()
	tr := s.Tracer
	var runSpan *trace.Span
	if tr != nil {
		if t, ok := s.Policy.(trace.Traceable); ok {
			t.AttachTracer(tr)
		}
		runSpan = tr.StartAmbient("run")
		runSpan.Attr("app", app.Name).
			Attr("policy", s.Policy.Name()).
			Int("iterations", int64(app.Iterations))
		defer runSpan.End()
	}
	tl := s.Timeline
	var ann timeline.Annotator
	if tl != nil {
		tl.StartRun(app.Name, s.Policy.Name())
		// Finish on every exit (including error returns) so live
		// subscribers always see the stream terminate; Finish is
		// idempotent and the serve layer may call it again.
		defer tl.Finish()
		if a, ok := s.Policy.(timeline.Attachable); ok {
			a.AttachTimeline(tl)
		}
		ann, _ = s.Policy.(timeline.Annotator)
	}
	if err := app.Validate(); err != nil {
		if ins.failed != nil {
			ins.failed.Inc()
		}
		if runSpan != nil {
			runSpan.Attr("error", err.Error())
		}
		return nil, err
	}
	if ins.started != nil {
		ins.started.Inc()
	}
	rec := daq.New(s.DAQRateHz)
	if s.Faults != nil {
		rec.Drop = s.Faults.DropDAQSample
	}
	rep := &Report{App: app.Name, Policy: s.Policy.Name()}
	// The run count is known up front; growing the slice inside the
	// kernel-boundary loop would reallocate log(n) times per session.
	rep.Runs = make([]KernelRun, 0, app.Iterations*len(app.Kernels))
	// sampleLo marks how much of the DAQ stream the timeline has
	// already consumed; each boundary feeds it the fresh segment.
	sampleLo := 0
	for iter := 0; iter < app.Iterations; iter++ {
		for _, k := range app.Kernels {
			if err := ctx.Err(); err != nil {
				// Cancellation is counted apart from failure: a draining
				// server canceling runs at kernel boundaries is not a sign
				// of a sick backend, and alerting thresholds on the failed
				// family must not fire for it.
				if ins.canceled != nil {
					ins.canceled.Inc()
				}
				err = fmt.Errorf("session: run of %s canceled at %s iter %d: %w",
					app.Name, k.Name, iter, err)
				if runSpan != nil {
					runSpan.Attr("error", err.Error())
				}
				return nil, err
			}
			// Tracing note: span methods are nil-safe no-ops, so the
			// untraced path runs them freely; only annotations whose
			// argument expressions allocate (Config.String()) sit behind
			// nil checks.
			ks := runSpan.Child("kernel")
			if ks != nil {
				ks.Attr("name", k.Name).Int("iter", int64(iter))
			}
			ds := ks.Child("decide")
			prevAmb := tr.SetAmbient(ds)
			cfg := s.Policy.Decide(k.Name, iter)
			tr.SetAmbient(prevAmb)
			if ds != nil {
				ds.Attr("config", cfg.String())
			}
			ds.End()
			if !cfg.Valid() {
				if ins.failed != nil {
					ins.failed.Inc()
				}
				err := fmt.Errorf("session: policy %s returned invalid config %v for %s",
					s.Policy.Name(), cfg, k.Name)
				if runSpan != nil {
					ks.Attr("error", err.Error())
					ks.End()
					runSpan.Attr("error", err.Error())
				}
				return nil, err
			}
			actual := cfg
			if s.Faults != nil {
				actual = s.Faults.ApplyConfig(cfg)
			}
			sim := ks.Child("simulate")
			var res gpusim.Result
			if hr, ok := s.Sim.(hitRunner); ok && sim != nil {
				// The RunHit variant returns bit-identical results plus
				// the memo-hit flag; it is only consulted when tracing so
				// the untraced call path is untouched.
				var hit bool
				res, hit = hr.RunHit(k, iter, actual)
				sim.Bool("simcache_hit", hit)
			} else {
				res = s.Sim.Run(k, iter, actual)
			}
			if sim != nil {
				sim.Attr("config", actual.String()).Float("time_s", res.Time)
			}
			sim.End()
			rails := s.Power.Rails(actual, power.Activity{
				VALUBusyFrac:    res.Counters.VALUBusy / 100,
				MemUnitBusyFrac: res.Counters.MemUnitBusy / 100,
				AchievedGBs:     res.AchievedGBs,
			})
			rec.Observe(res.Time, rails)
			obs := res
			if s.Faults != nil {
				obs = s.Faults.Observation(k.Name, res)
			}
			os := ks.Child("observe")
			prevAmb = tr.SetAmbient(os)
			s.Policy.Observe(k.Name, iter, obs)
			tr.SetAmbient(prevAmb)
			os.End()
			ks.End()
			rep.Runs = append(rep.Runs, KernelRun{
				Kernel: k.Name, Iter: iter, Config: actual, Commanded: cfg, Result: res, Rails: rails,
			})
			if tl != nil {
				// Power first, then the decision, so a live subscriber
				// woken by the boundary event sees the power stream up
				// to it. The decision carries the true physics (actual
				// config, exact time/energy); the annotator — queried
				// after Observe so it reflects this boundary's action —
				// adds the policy's view.
				all := rec.Samples()
				tl.ObserveSamples(all[sampleLo:])
				sampleLo = len(all)
				endS := rec.Now()
				d := timeline.Decision{
					Kernel: k.Name, Iter: iter,
					StartS: endS - res.Time, EndS: endS,
					TimeS: res.Time, CardW: rails.Card(), EnergyJ: rails.Card() * res.Time,
					Config: timeline.ConfigOf(actual), Commanded: timeline.ConfigOf(cfg),
					VALUBusy: res.Counters.VALUBusy, MemUnitBusy: res.Counters.MemUnitBusy,
				}
				if ann != nil {
					if det, ok := ann.TimelineDecision(k.Name, iter); ok {
						d.Source, d.Proxy = det.Source, det.Proxy
						if det.HaveBins {
							b := timeline.BinsOf(det.Bins)
							d.Bins = &b
						}
					}
				}
				tl.RecordDecision(d)
			}
			if ins.kernels != nil {
				ins.kernels.Inc()
				ins.simSeconds.Add(res.Time)
			}
		}
	}
	rep.Energy = rec.Energy()
	rep.Trace = rec.Samples()
	if ins.completed != nil {
		ins.completed.Inc()
		ins.ed2.Observe(rep.ED2())
	}
	if runSpan != nil {
		runSpan.Float("total_time_s", rep.TotalTime()).
			Float("total_energy_j", rep.TotalEnergy()).
			Float("ed2", rep.ED2())
	}
	return rep, nil
}

// hitRunner is the optional simulator interface (implemented by
// simcache.Cached) reporting whether a result came from the memo, so
// traced simulate spans can carry cache behaviour.
type hitRunner interface {
	RunHit(k *workloads.Kernel, iter int, cfg hw.Config) (gpusim.Result, bool)
}

// TotalTime returns application execution time in seconds.
func (r *Report) TotalTime() float64 {
	sum := 0.0
	for _, run := range r.Runs {
		sum += run.Result.Time
	}
	return sum
}

// TotalEnergy returns total card energy in joules.
func (r *Report) TotalEnergy() float64 { return r.Energy.Total() }

// AveragePower returns mean card power in watts.
func (r *Report) AveragePower() float64 {
	t := r.TotalTime()
	if t <= 0 {
		return 0
	}
	return r.TotalEnergy() / t
}

// Sample returns the whole run as a metrics sample.
func (r *Report) Sample() metrics.Sample {
	return metrics.Sample{Seconds: r.TotalTime(), Watts: r.AveragePower()}
}

// ED2 returns the application's energy-delay-squared product.
func (r *Report) ED2() float64 { return r.Sample().ED2() }

// ED returns the application's energy-delay product.
func (r *Report) ED() float64 { return r.Sample().ED() }

// KernelSample aggregates the runs of one kernel into a metrics sample.
func (r *Report) KernelSample(kernel string) metrics.Sample {
	var out metrics.Sample
	for _, run := range r.Runs {
		if run.Kernel == kernel {
			out = out.Add(run.Sample())
		}
	}
	return out
}

// Residency returns the fraction of execution time each value of the
// tunable was in effect (the quantity of Figures 15-16). Keys are tunable
// values (CU count, or MHz).
func (r *Report) Residency(t hw.Tunable) map[int]float64 {
	total := r.TotalTime()
	out := make(map[int]float64)
	if total <= 0 {
		return out
	}
	for _, run := range r.Runs {
		out[t.Value(run.Config)] += run.Result.Time / total
	}
	return out
}

// KernelResidency is Residency restricted to one kernel's invocations.
func (r *Report) KernelResidency(kernel string, t hw.Tunable) map[int]float64 {
	total := 0.0
	for _, run := range r.Runs {
		if run.Kernel == kernel {
			total += run.Result.Time
		}
	}
	out := make(map[int]float64)
	if total <= 0 {
		return out
	}
	for _, run := range r.Runs {
		if run.Kernel == kernel {
			out[t.Value(run.Config)] += run.Result.Time / total
		}
	}
	return out
}

// Comparison holds one application's results under the evaluated policies,
// normalized the way the paper's Figures 10-13 are: ratios of the policy
// metric to the baseline metric.
type Comparison struct {
	App      string
	Baseline metrics.Sample
	Policies map[string]metrics.Sample
}

// Compare runs the application under the baseline and each given policy
// factory, returning the comparison. Policies are constructed fresh per
// application so no state leaks between apps.
func Compare(app *workloads.Application, factories map[string]func() policy.Policy) (*Comparison, error) {
	base, err := New(policy.NewBaseline()).Run(app)
	if err != nil {
		return nil, err
	}
	cmp := &Comparison{
		App:      app.Name,
		Baseline: base.Sample(),
		Policies: make(map[string]metrics.Sample),
	}
	for name, factory := range factories {
		rep, err := New(factory()).Run(app)
		if err != nil {
			return nil, err
		}
		cmp.Policies[name] = rep.Sample()
	}
	return cmp, nil
}
