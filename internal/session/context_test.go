package session

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"harmonia/internal/hw"
	"harmonia/internal/policy"
	"harmonia/internal/telemetry"
	"harmonia/internal/workloads"
)

func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New(policy.NewBaseline()).RunContext(ctx, workloads.Graph500())
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// haltingPolicy wraps the baseline and cancels its context after n
// decisions, emulating a client disconnecting mid-run.
type haltingPolicy struct {
	*policy.Baseline
	cancel  context.CancelFunc
	n       int
	decides int
}

func (h *haltingPolicy) Name() string { return "halting" }

func (h *haltingPolicy) Decide(kernel string, iter int) hw.Config {
	h.decides++
	if h.decides == h.n {
		h.cancel()
	}
	return h.Baseline.Decide(kernel, iter)
}

func TestRunContextCancelsAtKernelBoundary(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := &haltingPolicy{Baseline: policy.NewBaseline(), cancel: cancel, n: 2}
	_, err := New(p).RunContext(ctx, workloads.Graph500())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The run must stop at the boundary right after the cancelling
	// decision, not finish the application.
	if p.decides != 2 {
		t.Errorf("policy decided %d times after cancellation, want 2", p.decides)
	}
}

// TestCancellationCountsAsCanceledNotFailed: a context-canceled run
// increments harmonia_runs_canceled_total, leaving the failed family —
// the one alerting thresholds watch — untouched.
func TestCancellationCountsAsCanceledNotFailed(t *testing.T) {
	reg := telemetry.New()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := &haltingPolicy{Baseline: policy.NewBaseline(), cancel: cancel, n: 2}
	s := New(p)
	s.Telemetry = reg
	if _, err := s.RunContext(ctx, workloads.Graph500()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	canceled := reg.CounterVec(MetricRunsCanceled, "", "policy").With("halting")
	failed := reg.CounterVec(MetricRunsFailed, "", "policy").With("halting")
	if canceled.Value() != 1 || failed.Value() != 0 {
		t.Errorf("canceled/failed = %v/%v, want 1/0", canceled.Value(), failed.Value())
	}
}

func TestRunContextIsBitIdenticalToRun(t *testing.T) {
	app := workloads.Graph500()
	a, err := New(policy.NewBaseline()).Run(app)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(policy.NewBaseline()).RunContext(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a.ED2()) != math.Float64bits(b.ED2()) ||
		math.Float64bits(a.TotalEnergy()) != math.Float64bits(b.TotalEnergy()) {
		t.Errorf("RunContext diverged from Run: %v vs %v", b.ED2(), a.ED2())
	}
}

func TestTelemetryInstrumentation(t *testing.T) {
	reg := telemetry.New()
	app := workloads.Graph500()
	s := New(policy.NewBaseline())
	s.Telemetry = reg
	rep, err := s.Run(app)
	if err != nil {
		t.Fatal(err)
	}

	started := reg.CounterVec(MetricRunsStarted, "", "policy").With("baseline")
	completed := reg.CounterVec(MetricRunsCompleted, "", "policy").With("baseline")
	kernels := reg.CounterVec(MetricKernelInvocations, "", "policy").With("baseline")
	simSec := reg.CounterVec(MetricSimulatedSeconds, "", "policy").With("baseline")
	if started.Value() != 1 || completed.Value() != 1 {
		t.Errorf("started/completed = %v/%v, want 1/1", started.Value(), completed.Value())
	}
	if got := kernels.Value(); got != float64(len(rep.Runs)) {
		t.Errorf("kernel invocations = %v, want %d", got, len(rep.Runs))
	}
	if got := simSec.Value(); math.Abs(got-rep.TotalTime()) > 1e-12 {
		t.Errorf("simulated seconds = %v, want %v", got, rep.TotalTime())
	}
	ed2 := reg.HistogramVec(MetricRunED2, "", ed2Buckets, "policy").With("baseline")
	if ed2.Count() != 1 || math.Float64bits(ed2.Sum()) != math.Float64bits(rep.ED2()) {
		t.Errorf("ed2 histogram = count %d sum %v, want 1/%v", ed2.Count(), ed2.Sum(), rep.ED2())
	}

	// A second, failing run (invalid app) increments only failures.
	if _, err := s.Run(&workloads.Application{Name: "x"}); err == nil {
		t.Fatal("invalid app should fail")
	}
	failed := reg.CounterVec(MetricRunsFailed, "", "policy").With("baseline")
	if failed.Value() != 1 {
		t.Errorf("failed = %v, want 1", failed.Value())
	}

	// The exposition names the families the serve layer promises.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		MetricRunsStarted, MetricRunsCompleted, MetricRunsFailed,
		MetricKernelInvocations, MetricSimulatedSeconds, MetricRunED2,
	} {
		if !strings.Contains(b.String(), "# TYPE "+fam+" ") {
			t.Errorf("exposition missing family %s", fam)
		}
	}
}

// TestTelemetryDoesNotPerturbPhysics: the same run with and without a
// registry attached must agree bit for bit.
func TestTelemetryDoesNotPerturbPhysics(t *testing.T) {
	app := workloads.Graph500()
	plain, err := New(policy.NewBaseline()).Run(app)
	if err != nil {
		t.Fatal(err)
	}
	s := New(policy.NewBaseline())
	s.Telemetry = telemetry.New()
	instrumented, err := s.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(plain.ED2()) != math.Float64bits(instrumented.ED2()) {
		t.Errorf("telemetry changed ED2: %v vs %v", instrumented.ED2(), plain.ED2())
	}
}
