// Package sensitivity implements Section 4 of the paper: measuring the
// ground-truth performance sensitivity of kernels to the three hardware
// tunables, reducing per-configuration counter data to per-kernel
// training vectors, fitting linear-regression sensitivity predictors
// (the paper's Table 3), and binning predictions into the HIGH/MED/LOW
// classes Harmonia's coarse-grain block consumes (Section 5.2).
package sensitivity

import (
	"context"
	"fmt"
	"math"

	"harmonia/internal/batch"
	"harmonia/internal/counters"
	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/regress"
	"harmonia/internal/workloads"
)

// Measurement is the ground-truth sensitivity of one kernel to each
// tunable, measured by finite differences over the configuration space
// with the other tunables pinned at maximum (Section 4.1).
//
// A sensitivity of 1 means execution time scales inversely with the
// tunable (perfectly sensitive); 0 means the tunable does not matter;
// negative values mean raising the tunable *hurts* (e.g. CU count under
// L2 thrashing, Section 7.1).
type Measurement struct {
	Kernel string
	// CUs is sensitivity to active CU count.
	CUs float64
	// CUFreq is sensitivity to compute frequency.
	CUFreq float64
	// Compute is the aggregated compute-throughput sensitivity (CU count
	// and frequency scaled together, Section 4.1).
	Compute float64
	// Bandwidth is sensitivity to memory bus frequency.
	Bandwidth float64
}

// sensitivityOf converts a pair of timings into the paper's sensitivity
// ratio: relative change in execution time over relative change in the
// tunable, where ratio is highValue/lowValue of the tunable.
func sensitivityOf(tLow, tHigh, ratio float64) float64 {
	if tHigh <= 0 || ratio <= 1 {
		return 0
	}
	return (tLow/tHigh - 1) / (ratio - 1)
}

// measureIters is how many iterations are averaged per timing, matching
// the paper's multiple-runs-per-configuration methodology.
const measureIters = 8

func avgTime(m gpusim.Runner, k *workloads.Kernel, cfg hw.Config) float64 {
	sum := 0.0
	for i := 0; i < measureIters; i++ {
		sum += m.Run(k, i, cfg).Time
	}
	return sum / measureIters
}

// Measure computes the ground-truth sensitivities of a kernel on the
// given simulator (the raw model, or a memoizing simcache runner).
func Measure(m gpusim.Runner, k *workloads.Kernel) Measurement {
	max := hw.MaxConfig()
	cfg := func(cus int, cf, mf hw.MHz) hw.Config {
		return hw.Config{
			Compute: hw.ComputeConfig{CUs: cus, Freq: cf},
			Memory:  hw.MemConfig{BusFreq: mf},
		}
	}
	tMax := avgTime(m, k, max)

	tLowCU := avgTime(m, k, cfg(hw.MinCUs, hw.MaxCUFreq, hw.MaxMemFreq))
	tLowF := avgTime(m, k, cfg(hw.MaxCUs, hw.MinCUFreq, hw.MaxMemFreq))
	tLowBW := avgTime(m, k, cfg(hw.MaxCUs, hw.MaxCUFreq, hw.MinMemFreq))
	tLowBoth := avgTime(m, k, cfg(hw.MinCUs, hw.MinCUFreq, hw.MaxMemFreq))

	return Measurement{
		Kernel: k.Name,
		CUs:    sensitivityOf(tLowCU, tMax, float64(hw.MaxCUs)/float64(hw.MinCUs)),
		CUFreq: sensitivityOf(tLowF, tMax, float64(hw.MaxCUFreq)/float64(hw.MinCUFreq)),
		Compute: sensitivityOf(tLowBoth, tMax,
			float64(hw.MaxCUs)*float64(hw.MaxCUFreq)/(float64(hw.MinCUs)*float64(hw.MinCUFreq))),
		Bandwidth: sensitivityOf(tLowBW, tMax, float64(hw.MaxMemFreq)/float64(hw.MinMemFreq)),
	}
}

// Bin is a sensitivity class (Section 5.2).
type Bin int

const (
	// Low is sensitivity below 30%.
	Low Bin = iota
	// Med is sensitivity between 30% and 70%.
	Med
	// High is sensitivity above 70%.
	High
)

// Bin thresholds from Section 5.2.
const (
	LowThreshold  = 0.30
	HighThreshold = 0.70
)

func (b Bin) String() string {
	switch b {
	case Low:
		return "LOW"
	case Med:
		return "MED"
	case High:
		return "HIGH"
	default:
		return fmt.Sprintf("Bin(%d)", int(b))
	}
}

// BinOf classifies a sensitivity value.
func BinOf(s float64) Bin {
	switch {
	case s < LowThreshold:
		return Low
	case s <= HighThreshold:
		return Med
	default:
		return High
	}
}

// Bins is the per-tunable classification the CG block consumes.
type Bins struct {
	CUs     Bin
	CUFreq  Bin
	MemFreq Bin
}

// Predictor maps a performance-counter sample to predicted sensitivities.
// The paper ships two models (compute throughput and memory bandwidth,
// Table 3); the CG block bins a value per tunable, so this predictor
// additionally carries per-tunable compute models trained the same way.
type Predictor struct {
	// Bandwidth predicts memory-bandwidth sensitivity from the Table 3
	// bandwidth feature set.
	Bandwidth *regress.Model
	// Compute predicts aggregated compute-throughput sensitivity from
	// the Table 3 compute feature set.
	Compute *regress.Model
	// CUs and CUFreq predict the per-tunable compute sensitivities; they
	// use the extended feature set (bandwidth counters plus C-to-M
	// intensity, VALUBusy, and occupancy), since CU-count sensitivity
	// depends on memory-system interactions such as cache thrashing that
	// the three-feature compute set cannot express.
	CUs    *regress.Model
	CUFreq *regress.Model
}

// clampSens keeps predictions in a physically meaningful range.
func clampSens(v float64) float64 { return math.Max(-0.5, math.Min(1.5, v)) }

// predict evaluates a model, clamping the result. A shape mismatch
// between the feature vector and the model (a model trained against a
// different counter set than the one driving it) falls back to maximum
// sensitivity: the conservative answer — bin High, keep the resource up
// — so a misconfigured predictor degrades performance never correctness.
func predict(m *regress.Model, x []float64) float64 {
	v, err := m.Predict(x)
	if err != nil {
		return clampSens(1.5)
	}
	return clampSens(v)
}

// PredictBandwidth returns the predicted memory-bandwidth sensitivity.
func (p *Predictor) PredictBandwidth(cs counters.Set) float64 {
	return predict(p.Bandwidth, cs.BandwidthFeatures())
}

// PredictCompute returns the predicted aggregate compute sensitivity.
func (p *Predictor) PredictCompute(cs counters.Set) float64 {
	return predict(p.Compute, cs.ComputeFeatures())
}

// PredictCUs returns the predicted CU-count sensitivity.
func (p *Predictor) PredictCUs(cs counters.Set) float64 {
	if p.CUs == nil {
		return p.PredictCompute(cs)
	}
	return predict(p.CUs, cs.ExtendedFeatures())
}

// PredictCUFreq returns the predicted compute-frequency sensitivity.
func (p *Predictor) PredictCUFreq(cs counters.Set) float64 {
	if p.CUFreq == nil {
		return p.PredictCompute(cs)
	}
	return predict(p.CUFreq, cs.ExtendedFeatures())
}

// PredictBins returns the per-tunable sensitivity bins for a counter
// sample.
func (p *Predictor) PredictBins(cs counters.Set) Bins {
	return Bins{
		CUs:     BinOf(p.PredictCUs(cs)),
		CUFreq:  BinOf(p.PredictCUFreq(cs)),
		MemFreq: BinOf(p.PredictBandwidth(cs)),
	}
}

// PaperModel returns the predictor with the paper's published Table 3
// coefficients. It is shipped for reference and comparison; the
// experiments train a fresh model on the simulated platform (the
// published coefficients were fit to counters measured on the physical
// HD 7970, so their absolute values do not transfer to a different
// platform — the paper itself argues only the methodology is portable,
// Section 4.3).
func PaperModel() *Predictor {
	return &Predictor{
		Bandwidth: &regress.Model{
			Intercept: -0.42,
			Coeffs:    []float64{0.003, 0.011, 0.01, -0.004, 1.003, 1.158, -0.731},
			Names:     counters.BandwidthFeatureNames(),
		},
		Compute: &regress.Model{
			Intercept: 0.06,
			Coeffs:    []float64{0.007, 0.452, 0.024},
			Names:     counters.ComputeFeatureNames(),
		},
	}
}

// TrainingPoint is one row of the training set: a kernel's counter
// vector averaged across all hardware configurations (the data reduction
// of Section 4.2) paired with its measured sensitivities.
type TrainingPoint struct {
	Kernel   string
	Features counters.Set
	Truth    Measurement
}

// BuildTrainingSet measures every kernel across the full configuration
// space: counters are averaged over all configurations and iterations
// (Section 4.2's reduction of 11250 vectors to per-kernel nominals), and
// ground-truth sensitivities are measured per Section 4.1.
func BuildTrainingSet(m gpusim.Runner, kernels []*workloads.Kernel) []TrainingPoint {
	space := hw.ConfigSpace()
	points := make([]TrainingPoint, 0, len(kernels))
	for _, k := range kernels {
		var sets []counters.Set
		for _, cfg := range space {
			for i := 0; i < measureIters; i++ {
				sets = append(sets, m.Run(k, i, cfg).Counters)
			}
		}
		points = append(points, TrainingPoint{
			Kernel:   k.Name,
			Features: counters.Average(sets),
			Truth:    Measure(m, k),
		})
	}
	return points
}

// BuildConfigTrainingSet measures every kernel at every hardware
// configuration, keeping one training row per (kernel, configuration)
// pair — about 26 x 448 = 11648 rows, matching the scale of the paper's
// 11250 raw counter vectors (Section 4.2) before its averaging step. The
// paper could collapse configurations because its hardware counters
// varied little across them; on this platform the time-fraction counters
// (VALUBusy, MemUnitBusy, icActivity) shift materially with the
// configuration, so keeping per-configuration rows is what makes runtime
// predictions — taken at whatever configuration the kernel last ran at —
// in-distribution. This substitution is recorded in DESIGN.md.
func BuildConfigTrainingSet(m gpusim.Runner, kernels []*workloads.Kernel) []TrainingPoint {
	return BuildConfigTrainingSetN(m, kernels, 0)
}

// BuildConfigTrainingSetN is BuildConfigTrainingSet fanned out over a
// bounded worker pool, one job per kernel. Rows are assembled in kernel
// order with each kernel's rows generated serially, so the training set
// — and therefore the fitted predictor — is bit-identical for every
// worker count. workers follows the batch pool convention: 0 means
// GOMAXPROCS, 1 forces serial execution.
func BuildConfigTrainingSetN(m gpusim.Runner, kernels []*workloads.Kernel, workers int) []TrainingPoint {
	space := hw.ConfigSpace()
	// Training-set construction is deliberately uncancelable: it is the
	// one-time memoized sweep behind every predictor, bit-identical by
	// construction, and its callers (lazy sync.Once paths included) gate
	// cancellation at the run level instead.
	//lint:ignore ctxflow the training sweep is a one-time memoized computation with no caller ctx to thread
	ctx := context.Background()
	//lint:ignore errdrop kernelConfigRows never errors and the background context is never canceled
	perKernel, _ := batch.Map(ctx, workers, kernels,
		func(_ context.Context, _ int, k *workloads.Kernel) ([]TrainingPoint, error) {
			return kernelConfigRows(m, k, space), nil
		})
	points := make([]TrainingPoint, 0, len(kernels)*len(space))
	for _, rows := range perKernel {
		points = append(points, rows...)
	}
	return points
}

// kernelConfigRows generates one kernel's training rows across the
// configuration space.
func kernelConfigRows(m gpusim.Runner, k *workloads.Kernel, space []hw.Config) []TrainingPoint {
	truth := Measure(m, k)
	// A phase-stable kernel contributes one row per configuration;
	// phase-varying kernels contribute one per iteration phase, so that
	// runtime samples taken during any phase are in-distribution.
	iters := 1
	if k.Phases != nil {
		iters = measureIters
	}
	// Hoist the per-iteration invariant work (and the memo-key
	// projection, when m is a cache) out of the configuration loop. The
	// row order — configuration-outer, iteration-inner — is what the
	// fitted predictor's bit-identity depends on, so only the per-call
	// evaluation changes, never the loop structure.
	run := func(iter int, cfg hw.Config) gpusim.Result { return m.Run(k, iter, cfg) }
	if pr, ok := m.(gpusim.PreparedRunner); ok {
		prepared := make([]func(hw.Config) gpusim.Result, iters)
		for i := range prepared {
			prepared[i] = pr.Prepare(k, i)
		}
		run = func(iter int, cfg hw.Config) gpusim.Result { return prepared[iter](cfg) }
	}
	rows := make([]TrainingPoint, 0, iters*len(space))
	for _, cfg := range space {
		for i := 0; i < iters; i++ {
			rows = append(rows, TrainingPoint{
				Kernel:   k.Name,
				Features: run(i, cfg).Counters,
				Truth:    truth,
			})
		}
	}
	return rows
}

// Train fits the four linear sensitivity models on the training set
// (Section 4.3).
func Train(points []TrainingPoint) (*Predictor, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("sensitivity: empty training set")
	}
	bwX := make([][]float64, len(points))
	compX := make([][]float64, len(points))
	extX := make([][]float64, len(points))
	var bwY, compY, cuY, cufY []float64
	for i, pt := range points {
		bwX[i] = pt.Features.BandwidthFeatures()
		compX[i] = pt.Features.ComputeFeatures()
		extX[i] = pt.Features.ExtendedFeatures()
		bwY = append(bwY, pt.Truth.Bandwidth)
		compY = append(compY, pt.Truth.Compute)
		cuY = append(cuY, pt.Truth.CUs)
		cufY = append(cufY, pt.Truth.CUFreq)
	}
	bw, err := regress.Fit(bwX, bwY, counters.BandwidthFeatureNames())
	if err != nil {
		return nil, fmt.Errorf("sensitivity: bandwidth model: %w", err)
	}
	comp, err := regress.Fit(compX, compY, counters.ComputeFeatureNames())
	if err != nil {
		return nil, fmt.Errorf("sensitivity: compute model: %w", err)
	}
	cus, err := regress.Fit(extX, cuY, counters.ExtendedFeatureNames())
	if err != nil {
		return nil, fmt.Errorf("sensitivity: CU model: %w", err)
	}
	cuf, err := regress.Fit(extX, cufY, counters.ExtendedFeatureNames())
	if err != nil {
		return nil, fmt.Errorf("sensitivity: CU-frequency model: %w", err)
	}
	return &Predictor{Bandwidth: bw, Compute: comp, CUs: cus, CUFreq: cuf}, nil
}

// Accuracy reports mean absolute prediction error for the bandwidth and
// compute models over a set of points (Section 7.2 reports 3.03% and
// 5.71% on the physical platform).
type Accuracy struct {
	BandwidthMAE float64
	ComputeMAE   float64
	CUsMAE       float64
	CUFreqMAE    float64
}

// Evaluate measures predictor accuracy on the given points.
func Evaluate(p *Predictor, points []TrainingPoint) Accuracy {
	var wantBW, gotBW, wantC, gotC, wantCU, gotCU, wantCF, gotCF []float64
	for _, pt := range points {
		wantBW = append(wantBW, pt.Truth.Bandwidth)
		gotBW = append(gotBW, p.PredictBandwidth(pt.Features))
		wantC = append(wantC, pt.Truth.Compute)
		gotC = append(gotC, p.PredictCompute(pt.Features))
		wantCU = append(wantCU, pt.Truth.CUs)
		gotCU = append(gotCU, p.PredictCUs(pt.Features))
		wantCF = append(wantCF, pt.Truth.CUFreq)
		gotCF = append(gotCF, p.PredictCUFreq(pt.Features))
	}
	return Accuracy{
		BandwidthMAE: regress.MeanAbsError(wantBW, gotBW),
		ComputeMAE:   regress.MeanAbsError(wantC, gotC),
		CUsMAE:       regress.MeanAbsError(wantCU, gotCU),
		CUFreqMAE:    regress.MeanAbsError(wantCF, gotCF),
	}
}

// TrainDefault trains the predictor on the full workload suite with the
// default simulator, using per-configuration training rows so that
// runtime predictions are in-distribution at any operating point,
// returning any training failure as an error.
func TrainDefault() (*Predictor, error) {
	return Train(BuildConfigTrainingSet(gpusim.Default(), workloads.AllKernels()))
}

// DefaultPredictor is TrainDefault for callers that cannot propagate an
// error; it is what the experiments and the public API use when no
// custom model is supplied. The default suite is a fixed, known-good
// training set, so a failure is a programming error and panics.
func DefaultPredictor() *Predictor {
	p, err := TrainDefault()
	if err != nil {
		panic(err)
	}
	return p
}
