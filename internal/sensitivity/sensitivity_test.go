package sensitivity

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"harmonia/internal/gpusim"
	"harmonia/internal/workloads"
)

// The training sweeps cover the whole configuration space; share one
// instance across tests. trainPts holds the per-kernel averaged points
// (the paper's Section 4.2 reduction, used by the Table 3 experiment);
// trainPred is the shipped runtime predictor, trained per-configuration
// like DefaultPredictor.
var (
	trainOnce sync.Once
	trainPts  []TrainingPoint
	trainPred *Predictor
)

func trained(t *testing.T) ([]TrainingPoint, *Predictor) {
	t.Helper()
	trainOnce.Do(func() {
		m := gpusim.Default()
		trainPts = BuildTrainingSet(m, workloads.AllKernels())
		var err error
		trainPred, err = Train(BuildConfigTrainingSet(m, workloads.AllKernels()))
		if err != nil {
			t.Fatalf("training failed: %v", err)
		}
	})
	return trainPts, trainPred
}

func point(t *testing.T, pts []TrainingPoint, kernel string) TrainingPoint {
	t.Helper()
	for _, p := range pts {
		if p.Kernel == kernel {
			return p
		}
	}
	t.Fatalf("no training point for %q", kernel)
	return TrainingPoint{}
}

func TestBinOf(t *testing.T) {
	cases := []struct {
		s    float64
		want Bin
	}{
		{-0.2, Low}, {0, Low}, {0.29, Low},
		{0.30, Med}, {0.5, Med}, {0.70, Med},
		{0.71, High}, {1.2, High},
	}
	for _, c := range cases {
		if got := BinOf(c.s); got != c.want {
			t.Errorf("BinOf(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestBinString(t *testing.T) {
	if Low.String() != "LOW" || Med.String() != "MED" || High.String() != "HIGH" {
		t.Error("bin strings wrong")
	}
	if Bin(9).String() != "Bin(9)" {
		t.Error("unknown bin string wrong")
	}
}

func TestSensitivityOfEndpoints(t *testing.T) {
	// Perfectly sensitive: halving the tunable doubles the time.
	if got := sensitivityOf(2, 1, 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect sensitivity = %v, want 1", got)
	}
	// Insensitive: time unchanged.
	if got := sensitivityOf(1, 1, 2); got != 0 {
		t.Errorf("insensitive = %v, want 0", got)
	}
	// Inverse benefit (thrashing): lower tunable is faster.
	if got := sensitivityOf(0.5, 1, 2); got >= 0 {
		t.Errorf("thrashing sensitivity = %v, want negative", got)
	}
	// Degenerate inputs.
	if got := sensitivityOf(1, 0, 2); got != 0 {
		t.Errorf("zero baseline = %v, want 0", got)
	}
	if got := sensitivityOf(1, 1, 1); got != 0 {
		t.Errorf("ratio 1 = %v, want 0", got)
	}
}

func TestMeasuredSensitivitiesMatchPaperCharacterization(t *testing.T) {
	m := gpusim.Default()
	byName := map[string]Measurement{}
	for _, k := range workloads.AllKernels() {
		byName[k.Name] = Measure(m, k)
	}

	// MaxFlops: fully compute sensitive, bandwidth insensitive (Fig 3a).
	mf := byName["MaxFlops.Main"]
	if mf.Compute < 0.9 || mf.Bandwidth > 0.05 {
		t.Errorf("MaxFlops sensitivities = %+v", mf)
	}
	// DeviceMemory: strongly bandwidth sensitive (Fig 3b).
	dm := byName["DeviceMemory.Stream"]
	if dm.Bandwidth < 0.7 {
		t.Errorf("DeviceMemory bandwidth sensitivity = %v, want high", dm.Bandwidth)
	}
	// Sort.BottomScan: high compute, zero bandwidth sensitivity
	// (Sections 3.5 and 7.1).
	bs := byName["Sort.BottomScan"]
	if bs.CUs < 0.7 || bs.Bandwidth > 0.05 {
		t.Errorf("BottomScan sensitivities = %+v", bs)
	}
	// CoMD.AdvanceVelocity: high bandwidth sensitivity (Fig 7),
	// much higher than BottomScan's.
	av := byName["CoMD.AdvanceVelocity"]
	if av.Bandwidth < 0.7 || av.Bandwidth <= bs.Bandwidth {
		t.Errorf("AdvanceVelocity bandwidth sensitivity = %v", av.Bandwidth)
	}
	// SRAD.Prepare: tiny divergent kernel -> low compute sensitivity
	// despite 75% divergence (Fig 8); BottomScan (6% divergence, >2M
	// instructions) must be far more compute sensitive.
	sp := byName["SRAD.Prepare"]
	if sp.CUFreq > 0.35 {
		t.Errorf("SRAD.Prepare compute-freq sensitivity = %v, want low", sp.CUFreq)
	}
	if bs.CUFreq <= sp.CUFreq {
		t.Errorf("BottomScan (%v) should be more freq sensitive than SRAD.Prepare (%v)",
			bs.CUFreq, sp.CUFreq)
	}
	// DeviceMemory: despite being memory bound, compute frequency
	// matters through the clock-domain crossing (Fig 9).
	if dm.CUFreq < 0.3 {
		t.Errorf("DeviceMemory compute-freq sensitivity = %v, want material (Fig 9)", dm.CUFreq)
	}
}

func TestTrainedPredictorAccuracy(t *testing.T) {
	pts, pred := trained(t)
	acc := Evaluate(pred, pts)
	// The paper reports 3.03% / 5.71% on hardware; require the same
	// order of magnitude on the simulated platform.
	if acc.BandwidthMAE > 0.10 {
		t.Errorf("bandwidth MAE = %.3f, want < 0.10", acc.BandwidthMAE)
	}
	if acc.ComputeMAE > 0.15 {
		t.Errorf("compute MAE = %.3f, want < 0.15", acc.ComputeMAE)
	}
	if acc.CUsMAE > 0.10 || acc.CUFreqMAE > 0.10 {
		t.Errorf("per-tunable MAE = %.3f / %.3f, want < 0.10", acc.CUsMAE, acc.CUFreqMAE)
	}
	// Model-quality correlation comparable to the paper's 0.91/0.96.
	if pred.Bandwidth.Corr < 0.9 {
		t.Errorf("bandwidth model correlation = %.3f, want > 0.9", pred.Bandwidth.Corr)
	}
	if pred.Compute.Corr < 0.7 {
		t.Errorf("compute model correlation = %.3f, want > 0.7", pred.Compute.Corr)
	}
}

func TestPredictedBinsMatchKeyBehaviours(t *testing.T) {
	pts, pred := trained(t)
	bins := func(k string) Bins { return pred.PredictBins(point(t, pts, k).Features) }

	if b := bins("MaxFlops.Main"); b.CUs != High || b.CUFreq != High || b.MemFreq != Low {
		t.Errorf("MaxFlops bins = %+v, want HIGH/HIGH/LOW", b)
	}
	if b := bins("Sort.BottomScan"); b.CUs != High || b.MemFreq != Low {
		t.Errorf("BottomScan bins = %+v, want HIGH CU, LOW mem", b)
	}
	if b := bins("CoMD.AdvanceVelocity"); b.MemFreq != High || b.CUs != Low {
		t.Errorf("AdvanceVelocity bins = %+v, want LOW CU, HIGH mem", b)
	}
	if b := bins("CoMD.EAM_Force_1"); b.MemFreq != Low {
		t.Errorf("EAM_Force_1 mem bin = %v, want LOW (Section 7.1)", b.MemFreq)
	}
	// Graph500's main kernel: pinned compute, medium memory (Fig 16).
	if b := bins("Graph500.BottomStepUp"); b.CUs != High || b.CUFreq != High || b.MemFreq == High {
		t.Errorf("BottomStepUp bins = %+v, want HIGH/HIGH/non-HIGH", b)
	}
	// Thrashing apps: CU bin must be LOW so CG power-gates (Section 7.1).
	for _, k := range []string{"BPT.FindK", "XSBench.Lookup"} {
		if b := bins(k); b.CUs != Low {
			t.Errorf("%s CU bin = %v, want LOW", k, b.CUs)
		}
	}
}

func TestStreamclusterEdgeOfBinMiss(t *testing.T) {
	// Section 7.1: Streamcluster's CG slowdown comes from a prediction
	// "narrowly missing the HIGH bin". Verify the trained model
	// reproduces that: true CU sensitivity is HIGH, predicted is MED but
	// close to the boundary.
	pts, pred := trained(t)
	pt := point(t, pts, "Streamcluster.PGain")
	if got := BinOf(pt.Truth.CUs); got != High {
		t.Fatalf("true CU sensitivity bin = %v (%.3f), want HIGH", got, pt.Truth.CUs)
	}
	pCU := pred.PredictCUs(pt.Features)
	if BinOf(pCU) != Med {
		t.Fatalf("predicted CU sensitivity = %.3f (bin %v), want a MED near-miss", pCU, BinOf(pCU))
	}
	if HighThreshold-pCU > 0.15 {
		t.Errorf("predicted CU sensitivity %.3f misses HIGH bin by %.3f; want narrow", pCU, HighThreshold-pCU)
	}
}

func TestPaperModelShape(t *testing.T) {
	p := PaperModel()
	if len(p.Bandwidth.Coeffs) != 7 {
		t.Errorf("paper bandwidth model has %d coefficients, want 7 (Table 3)", len(p.Bandwidth.Coeffs))
	}
	if len(p.Compute.Coeffs) != 3 {
		t.Errorf("paper compute model has %d coefficients, want 3 (Table 3)", len(p.Compute.Coeffs))
	}
	if p.Bandwidth.Intercept != -0.42 || p.Compute.Intercept != 0.06 {
		t.Error("paper model intercepts do not match Table 3")
	}
	// Per-tunable models are absent: predictions fall back to the
	// aggregate compute model.
	pts, _ := trained(t)
	cs := point(t, pts, "MaxFlops.Main").Features
	if p.PredictCUs(cs) != p.PredictCompute(cs) {
		t.Error("PaperModel CU prediction should fall back to compute model")
	}
	if p.PredictCUFreq(cs) != p.PredictCompute(cs) {
		t.Error("PaperModel CU-freq prediction should fall back to compute model")
	}
}

func TestPredictionClamping(t *testing.T) {
	// Predictions must stay within the clamp range even on absurd
	// counter values.
	pts, pred := trained(t)
	base := point(t, pts, "MaxFlops.Main").Features
	f := func(a, b, c uint8) bool {
		cs := base
		cs.ICActivity = float64(a) / 25.5 // up to 10: out of range on purpose
		cs.MemUnitBusy = float64(b) * 10
		cs.VALUBusy = float64(c) * 10
		for _, v := range []float64{
			pred.PredictBandwidth(cs), pred.PredictCompute(cs),
			pred.PredictCUs(cs), pred.PredictCUFreq(cs),
		} {
			if v < -0.5 || v > 1.5 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrainEmptySet(t *testing.T) {
	if _, err := Train(nil); err == nil {
		t.Error("training on empty set should fail")
	}
}

func TestTrainingSetShape(t *testing.T) {
	pts, _ := trained(t)
	if len(pts) != len(workloads.AllKernels()) {
		t.Fatalf("training set has %d points, want one per kernel (%d)",
			len(pts), len(workloads.AllKernels()))
	}
	for _, pt := range pts {
		if err := pt.Features.Validate(); err != nil {
			t.Errorf("%s: invalid averaged features: %v", pt.Kernel, err)
		}
	}
}
