package harmonia

// Equivalence gates for worker budgeting: an outer application fan-out
// whose jobs run budgeted inner oracle sweeps must be byte-identical to
// the fully serial pipeline for every (outerWorkers, innerShare)
// combination, and a budget-split fan-out must never have more
// concurrent executors live than the declared allowance.

import (
	"bytes"
	"context"
	"testing"
	"testing/quick"

	"harmonia/internal/batch"
)

// budgetApps is a small cross-section of the suite: a phase-stable
// multi-kernel app, a phase-varying one, and a two-kernel sort.
var budgetApps = []string{"LUD", "Graph500", "Sort"}

// runBudgetedSuite runs each app under an oracle whose sweeps use
// `inner` workers, fanning apps out over `outer` batch workers, and
// returns the concatenated report JSON. Every call builds a fresh
// system, so no cache state leaks between worker-count combinations.
func runBudgetedSuite(t testing.TB, outer, inner int) []byte {
	t.Helper()
	sys := NewSystem(WithSimCache())
	reports, err := batch.Map(context.Background(), outer, budgetApps,
		func(_ context.Context, _ int, name string) (*Report, error) {
			app := App(name)
			return sys.Run(app, sys.OracleWithWorkers(inner, app))
		})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, rep := range reports {
		if err := WriteReportJSON(&buf, rep); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestBudgetedNestedSweepBitIdentical is the satellite property gate:
// nested budgeted parallelism reproduces the serial pipeline byte for
// byte at every (outerWorkers, innerShare) combination — including
// deliberately oversubscribed ones, since correctness must never depend
// on the budget arithmetic.
func TestBudgetedNestedSweepBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("many full pipeline evaluations")
	}
	serial := runBudgetedSuite(t, 1, 1)

	// Budget-split combinations, plus the worker-gauge allowance gate:
	// spawned pool workers + the calling goroutine never exceed the
	// declared budget.
	for _, total := range []int{1, 2, 3, 4, 8, 16} {
		outer, innerB := batch.NewBudget(total).Split(len(budgetApps))
		batch.ResetPeakWorkers()
		got := runBudgetedSuite(t, outer, innerB.Workers())
		if !bytes.Equal(got, serial) {
			t.Fatalf("budget %d (outer %d × inner %d): reports differ from serial",
				total, outer, innerB.Workers())
		}
		if peak := batch.PeakWorkers(); peak+1 > int64(total) {
			t.Fatalf("budget %d: %d spawned workers (+1 caller) exceed the allowance",
				total, peak)
		}
	}

	// Arbitrary combinations, budgeted or not.
	f := func(ow, iw uint8) bool {
		outer := int(ow%4) + 1
		inner := int(iw%4) + 1
		return bytes.Equal(runBudgetedSuite(t, outer, inner), serial)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

// TestEnvBudgetSplitSuiteBitIdentical covers the experiments wiring:
// Env.Workers now budget-splits between the app fan-out and nested
// oracle sweeps, and the full suite must stay bit-identical to serial
// at budgets that exercise serial inner shares, even splits, and
// width-capped splits. (TestSerialParallelSuiteBitIdentical pins 1 vs
// 8; this pins the split arithmetic itself on a smaller surface.)
func TestEnvBudgetSplitSuiteBitIdentical(t *testing.T) {
	for _, budget := range []int{2, 5} {
		outer, inner := batch.NewBudget(budget).Split(len(budgetApps))
		batch.ResetPeakWorkers()
		got := runBudgetedSuite(t, outer, inner.Workers())
		want := runBudgetedSuite(t, 1, 1)
		if !bytes.Equal(got, want) {
			t.Fatalf("budget %d: split suite differs from serial", budget)
		}
	}
}
