package harmonia

// Equivalence gates for the simulation memo and the batch engine: a
// cached run must be bit-for-bit the run the paper's methodology
// produces uncached, and a parallel suite must be bit-for-bit the
// serial suite. Comparisons go through encoding/json (which round-trips
// float64 exactly) or direct float64-bits checks — no tolerances.

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"testing"

	"harmonia/internal/experiments"
)

// runPair executes the same (app, policy-name) run on a cached and an
// uncached System and returns both reports.
func runPair(t *testing.T, appName string, mk func(*System) Policy) (cached, uncached *Report) {
	t.Helper()
	plain := NewSystem()
	memo := NewSystem(WithSimCache())
	var err error
	uncached, err = plain.Run(App(appName), mk(plain))
	if err != nil {
		t.Fatal(err)
	}
	// Run twice through the memo: the second pass answers from cache.
	if _, err = memo.Run(App(appName), mk(memo)); err != nil {
		t.Fatal(err)
	}
	cached, err = memo.Run(App(appName), mk(memo))
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := memo.SimCacheStats(); hits == 0 {
		t.Fatalf("%s: second cached run recorded no cache hits", appName)
	}
	return cached, uncached
}

// TestCachedRunBitIdentical is the tentpole acceptance gate: reports
// produced through the simulation memo are bit-for-bit the reports the
// raw simulator produces — across policies, including the oracle (whose
// sweeps run entirely through the cache) and a phase-varying app.
func TestCachedRunBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		app  string
		mk   func(*System) Policy
	}{
		{"baseline/SRAD", "SRAD", func(s *System) Policy { return s.Baseline() }},
		{"harmonia/Graph500", "Graph500", func(s *System) Policy { return s.Harmonia() }},
		{"oracle/LUD", "LUD", func(s *System) Policy { return s.Oracle(App("LUD")) }},
		{"powertune/Sort", "Sort", func(s *System) Policy { return s.PowerTune(150) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cached, uncached := runPair(t, tc.app, tc.mk)
			if !reflect.DeepEqual(cached, uncached) {
				t.Fatalf("cached report differs from uncached (DeepEqual)")
			}
			var cb, ub bytes.Buffer
			if err := WriteReportJSON(&cb, cached); err != nil {
				t.Fatal(err)
			}
			if err := WriteReportJSON(&ub, uncached); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(cb.Bytes(), ub.Bytes()) {
				t.Fatalf("cached report JSON differs from uncached")
			}
		})
	}
}

// TestFaultedRunBypassesCache: fault-injected runs must never touch the
// memo — neither reading stale entries nor polluting it — and must
// replay identically on cached and uncached systems.
func TestFaultedRunBypassesCache(t *testing.T) {
	fc := FaultProfile(42, 0.5)
	memo := NewSystem(WithSimCache())
	plain := NewSystem()

	// Warm the memo with a clean run first, so a bypass bug that reads
	// cached clean results would have something to read.
	if _, err := memo.Run(App("SRAD"), memo.Baseline()); err != nil {
		t.Fatal(err)
	}
	hits0, misses0 := memo.SimCacheStats()

	cachedRep, err := memo.RunContext(context.Background(), App("SRAD"), memo.Baseline(), RunWithFaults(fc))
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := memo.SimCacheStats(); hits != hits0 || misses != misses0 {
		t.Fatalf("faulted run touched the cache: hits %d->%d misses %d->%d",
			hits0, hits, misses0, misses)
	}
	plainRep, err := plain.RunContext(context.Background(), App("SRAD"), plain.Baseline(), RunWithFaults(fc))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(cachedRep.ED2()) != math.Float64bits(plainRep.ED2()) ||
		math.Float64bits(cachedRep.TotalTime()) != math.Float64bits(plainRep.TotalTime()) {
		t.Fatal("faulted run differs between cached and uncached systems")
	}
}

// TestSerialParallelSuiteBitIdentical: the experiments suite fanned out
// on the batch pool must reproduce the serial suite exactly, worker
// count notwithstanding.
func TestSerialParallelSuiteBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full suite evaluations")
	}
	serial := experiments.NewEnv()
	serial.Workers = 1
	parallel := experiments.NewEnv()
	parallel.Workers = 8

	sr, err := serial.Results(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pr, err := parallel.Results(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sr, pr) {
		t.Fatal("parallel suite results differ from serial")
	}

	// The robustness study exercises per-job fault injectors and the
	// cache-bypass path; it must be worker-count-invariant too.
	rs, err := experiments.Robustness(context.Background(), serial, 42, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := experiments.Robustness(context.Background(), parallel, 42, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs, rp) {
		t.Fatal("parallel robustness study differs from serial")
	}
}

// TestLabSharesSystemCache: Lab() threads the System's memo through the
// experiments environment, so suite studies reuse what runs already
// simulated.
func TestLabSharesSystemCache(t *testing.T) {
	sys := NewSystem(WithSimCache())
	if _, err := sys.Run(App("SRAD"), sys.Baseline()); err != nil {
		t.Fatal(err)
	}
	_, misses0 := sys.SimCacheStats()
	lab := sys.Lab()
	if lab.Cache == nil {
		t.Fatal("Lab() dropped the System's cache")
	}
	// A lab session over the same app re-simulates nothing new at the
	// baseline configuration.
	res, err := experiments.ComputeOnlyStudy(context.Background(), lab)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	hits, _ := sys.SimCacheStats()
	if hits == 0 {
		t.Error("lab study never hit the shared cache")
	}
	_, misses1 := sys.SimCacheStats()
	if misses1 < misses0 {
		t.Error("miss counter went backwards")
	}
}
