package harmonia

// Acceptance gates for run tracing and the v2 error surface: tracing
// must be provably inert (a traced run's Report is bit-identical to an
// untraced one), same-seed runs must produce byte-identical span trees
// under an injected clock, and the sentinel errors must work with
// errors.Is across wrapping layers.

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"harmonia/internal/trace"
)

// tickClock is the injectable deterministic clock for span-tree
// byte-identity: 1µs per reading.
func tickClock() func() time.Duration {
	var ticks time.Duration
	return func() time.Duration {
		ticks += time.Microsecond
		return ticks
	}
}

// TestTracedRunBitIdentical is the inertness gate: attaching a span
// recorder must not change a single computed value, across the
// controller (decision spans), the oracle (sweep spans), and the
// simulation memo (hit/miss annotations).
func TestTracedRunBitIdentical(t *testing.T) {
	cases := []struct {
		name  string
		cache bool
		mk    func(*System) Policy
	}{
		{"harmonia/Graph500", false, func(s *System) Policy { return s.Harmonia() }},
		{"oracle/LUD", true, func(s *System) Policy { return s.Oracle(App("LUD")) }},
		{"baseline-cached/SRAD", true, func(s *System) Policy { return s.Baseline() }},
	}
	app := map[string]string{
		"harmonia/Graph500": "Graph500", "oracle/LUD": "LUD", "baseline-cached/SRAD": "SRAD",
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mkSys := func() *System {
				if tc.cache {
					return NewSystem(WithSimCache())
				}
				return NewSystem()
			}
			plain := mkSys()
			untraced, err := plain.Run(App(app[tc.name]), tc.mk(plain))
			if err != nil {
				t.Fatal(err)
			}
			observed := mkSys()
			rec := NewTraceRecorder(1)
			traced, err := observed.RunContext(t.Context(), App(app[tc.name]), tc.mk(observed), RunWithTrace(rec))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(traced, untraced) {
				t.Fatal("traced report differs from untraced (DeepEqual)")
			}
			var tb, ub bytes.Buffer
			if err := WriteReportJSON(&tb, traced); err != nil {
				t.Fatal(err)
			}
			if err := WriteReportJSON(&ub, untraced); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(tb.Bytes(), ub.Bytes()) {
				t.Fatal("traced report JSON differs from untraced")
			}
			if rec.Len() == 0 {
				t.Fatal("traced run recorded no spans")
			}
		})
	}
}

// TestSameSeedSpanTreesByteIdentical: two runs of the same workload
// under the same policy, recorders seeded identically with an injected
// clock, must serialize byte-identical span trees.
func TestSameSeedSpanTreesByteIdentical(t *testing.T) {
	var bufs [2]bytes.Buffer
	for i := range bufs {
		sys := NewSystem(WithSimCache())
		rec := trace.New(77, trace.WithClock(tickClock()))
		if _, err := sys.RunContext(t.Context(), App("SRAD"), sys.Harmonia(), RunWithTrace(rec)); err != nil {
			t.Fatal(err)
		}
		if err := rec.Snapshot().WriteJSON(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatalf("same-seed span trees differ:\n%.2000s\n---\n%.2000s", bufs[0].String(), bufs[1].String())
	}
}

// TestRunSpanTreeShape: the traced run produces the documented
// hierarchy — run → kernel → decide/simulate/observe phases, with the
// Harmonia controller's decision spans nested under observe (the
// controller decides at the end of each kernel's observation) and
// simulate spans carrying the memo hit/miss annotation.
func TestRunSpanTreeShape(t *testing.T) {
	sys := NewSystem(WithSimCache())
	// Warm the memo so the traced run sees cache hits.
	if _, err := sys.Run(App("SRAD"), sys.Baseline()); err != nil {
		t.Fatal(err)
	}
	rec := NewTraceRecorder(9)
	if _, err := sys.RunContext(t.Context(), App("SRAD"), sys.Harmonia(), RunWithTrace(rec)); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	byID := map[uint64]trace.SpanData{}
	count := map[string]int{}
	for _, sp := range snap.Spans {
		byID[sp.ID] = sp
		count[sp.Name]++
	}
	for _, name := range []string{"run", "kernel", "decide", "simulate", "observe", "decision"} {
		if count[name] == 0 {
			t.Fatalf("no %q spans in the traced run (have %v)", name, count)
		}
	}
	if count["run"] != 1 {
		t.Fatalf("want exactly one run span, got %d", count["run"])
	}
	sawHit := false
	for _, sp := range snap.Spans {
		if !sp.Ended {
			t.Fatalf("span %q left open after the run", sp.Name)
		}
		parent := byID[sp.Parent].Name
		switch sp.Name {
		case "run":
			if sp.Parent != 0 {
				t.Fatal("run span is not a root")
			}
		case "kernel":
			if parent != "run" {
				t.Fatalf("kernel span parented under %q", parent)
			}
		case "decide", "simulate", "observe":
			if parent != "kernel" {
				t.Fatalf("%s span parented under %q", sp.Name, parent)
			}
		case "decision":
			if parent != "observe" {
				t.Fatalf("controller decision span parented under %q", parent)
			}
		}
		if sp.Name == "simulate" {
			for _, a := range sp.Attrs {
				if a.Key == "simcache_hit" && a.Value == "true" {
					sawHit = true
				}
			}
		}
	}
	if !sawHit {
		t.Fatal("no simulate span carried simcache_hit=true over a warm memo")
	}
}

// TestSentinelErrors: the v2 sentinels work with errors.Is through the
// wrapping layers that produce them.
func TestSentinelErrors(t *testing.T) {
	if _, err := ParseConfig("999/999/999"); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("ParseConfig error %v does not wrap ErrInvalidConfig", err)
	}
	if _, err := ParseConfig("garbage"); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("ParseConfig error %v does not wrap ErrInvalidConfig", err)
	}
	cfg, err := ParseConfig("16/700/925")
	if err != nil {
		t.Fatalf("legal config rejected: %v", err)
	}
	if !cfg.Valid() {
		t.Fatalf("parsed config %v is not on the legal grid", cfg)
	}
}
