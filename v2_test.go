package harmonia

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
)

// TestTrainedPredictorRaceRegression is the regression test for the v1
// data race: two goroutines calling the lazy-training path concurrently
// both trained and both wrote s.pred. Under -race this hammers the v2
// path and asserts every caller observes one predictor.
func TestTrainedPredictorRaceRegression(t *testing.T) {
	s := NewSystem()
	const goroutines = 16
	preds := make([]*Predictor, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			preds[i], errs[i] = s.TrainedPredictor()
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if preds[i] == nil || preds[i] != preds[0] {
			t.Fatalf("goroutine %d saw predictor %p, goroutine 0 saw %p", i, preds[i], preds[0])
		}
	}
	// The deprecated panicking accessor must agree.
	if s.Predictor() != preds[0] {
		t.Error("Predictor() disagrees with TrainedPredictor()")
	}
}

// TestConcurrentControllerConstruction drives every lazy-training
// constructor from parallel goroutines on one fresh System.
func TestConcurrentControllerConstruction(t *testing.T) {
	s := NewSystem()
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, build := range []func() error{
				func() error { _, err := s.HarmoniaE(); return err },
				func() error { _, err := s.CGOnlyE(); return err },
				func() error { _, err := s.ComputeDVFSOnlyE(); return err },
				func() error { _, err := s.HarmoniaNaiveE(); return err },
				func() error { _, err := s.HarmoniaWithE(ControllerOptions{DisableFG: true}); return err },
			} {
				if err := build(); err != nil {
					errc <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestFunctionalOptions(t *testing.T) {
	pre := PaperTable3()
	fc := FaultProfile(42, 0.5)
	reg := NewTelemetry()
	s := NewSystem(WithPredictor(pre), WithFaultInjection(fc), WithTelemetry(reg))

	if got, err := s.TrainedPredictor(); err != nil || got != pre {
		t.Errorf("WithPredictor not honoured: %p/%v, want %p", got, err, pre)
	}
	if s.Telemetry() != reg {
		t.Error("WithTelemetry not honoured")
	}
	// WithFaultInjection must behave exactly like the deprecated
	// mutate-and-chain WithFaults.
	app := App("Graph500")
	rep1, err := s.Run(app, s.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	legacy := NewSystem().WithFaults(fc)
	rep2, err := legacy.Run(app, legacy.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(rep1.ED2()) != math.Float64bits(rep2.ED2()) {
		t.Errorf("option-armed faults %v != chain-armed faults %v", rep1.ED2(), rep2.ED2())
	}
}

func TestRunOptionsOverrideSystemFaults(t *testing.T) {
	fc := FaultProfile(42, 1)
	s := NewSystem(WithFaultInjection(fc))
	app := App("Graph500")

	clean := NewSystem()
	wantClean, err := clean.Run(app, clean.Baseline())
	if err != nil {
		t.Fatal(err)
	}

	// RunWithoutFaults must fully suppress construction-time faults.
	got, err := s.RunContext(context.Background(), app, s.Baseline(), RunWithoutFaults())
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.ED2()) != math.Float64bits(wantClean.ED2()) {
		t.Errorf("RunWithoutFaults ED2 = %v, want clean %v", got.ED2(), wantClean.ED2())
	}

	// RunWithFaults must override with a different profile without
	// touching the System's armed config for later runs.
	other := FaultProfile(7, 1)
	if _, err := s.RunContext(context.Background(), app, s.Baseline(), RunWithFaults(other)); err != nil {
		t.Fatal(err)
	}
	armed, err := s.Run(app, s.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	armedWant := NewSystem().WithFaults(fc)
	want, err := armedWant.Run(app, armedWant.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(armed.ED2()) != math.Float64bits(want.ED2()) {
		t.Errorf("per-run fault option leaked into System state")
	}
}

func TestRunContextCancellation(t *testing.T) {
	s := system()
	app := App("Graph500")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunContext(ctx, app, s.Baseline()); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled run error = %v, want context.Canceled", err)
	}

	// Cancel mid-run from a policy callback: the session must stop at
	// the next kernel boundary.
	ctx2, cancel2 := context.WithCancel(context.Background())
	p := &cancellingPolicy{inner: s.Baseline(), cancel: cancel2, after: 3}
	_, err := s.RunContext(ctx2, app, p)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("mid-run cancel error = %v, want context.Canceled", err)
	}
	if p.decides > 4 {
		t.Errorf("run kept going for %d decisions after cancellation", p.decides)
	}
}

// cancellingPolicy cancels its context after N decisions.
type cancellingPolicy struct {
	inner   Policy
	cancel  context.CancelFunc
	after   int
	decides int
}

func (c *cancellingPolicy) Name() string { return "test-cancel" }
func (c *cancellingPolicy) Decide(kernel string, iter int) Config {
	c.decides++
	if c.decides == c.after {
		c.cancel()
	}
	return c.inner.Decide(kernel, iter)
}
func (c *cancellingPolicy) Observe(kernel string, iter int, res SimResult) {
	c.inner.Observe(kernel, iter, res)
}

// TestConcurrentRunsOnSharedSystem runs different policies in parallel
// on one System; with -race this guards the whole v2 concurrency story
// at the public-API level.
func TestConcurrentRunsOnSharedSystem(t *testing.T) {
	s := system()
	apps := []string{"Graph500", "Sort", "SRAD"}
	var wg sync.WaitGroup
	errc := make(chan error, len(apps)*3)
	for _, name := range apps {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			app := App(name)
			ctrl, err := s.HarmoniaE()
			if err != nil {
				errc <- err
				return
			}
			if _, err := s.RunContext(context.Background(), app, ctrl); err != nil {
				errc <- err
			}
			if _, err := s.RunContext(context.Background(), app, s.Baseline(),
				RunWithFaults(FaultProfile(1, 0.5))); err != nil {
				errc <- err
			}
		}(name)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestDeprecatedWrappersStillWork pins the v1 surface: chain-style
// construction and the panicking constructors keep working.
func TestDeprecatedWrappersStillWork(t *testing.T) {
	s := NewSystem().WithFaults(FaultProfile(42, 0.25)).WithoutFaults()
	if s.faultConfig() != nil {
		t.Error("WithoutFaults left faults armed")
	}
	pre := PaperTable3()
	s.UsePredictor(pre)
	if s.Predictor() != pre {
		t.Error("UsePredictor/Predictor roundtrip broken")
	}
	if c := s.Harmonia(); c == nil {
		t.Error("Harmonia returned nil")
	}
}
