// v1 compatibility surface. Every deprecated wrapper the v2 API keeps
// alive lives in this file, nowhere else, so the compatibility debt is
// auditable at a glance.
//
// Deprecation schedule (also in README "API stability"): the wrappers
// below are frozen — they get bug fixes but no new behaviour — and will
// be removed in the next major version. Migrate as follows:
//
//	Predictor()      → TrainedPredictor()           (error, not panic)
//	UsePredictor(p)  → NewSystem(WithPredictor(p))  (construction-time)
//	WithFaults(fc)   → WithFaultInjection(fc) at construction,
//	                   or RunWithFaults(fc) per run
//	WithoutFaults()  → RunWithoutFaults() per run
package harmonia

// Predictor returns the system's sensitivity predictor, training it on
// first use.
//
// Deprecated: Predictor panics if training fails. Use TrainedPredictor,
// which returns the error instead.
func (s *System) Predictor() *Predictor {
	// The default training set is fixed and known good, so the panic
	// path is unreachable in practice.
	return must(s.TrainedPredictor())
}

// UsePredictor installs a custom predictor (e.g. one trained with
// TrainPredictor on user workloads).
//
// Deprecated: prefer the construction option WithPredictor, which
// cannot race with runs already in flight.
func (s *System) UsePredictor(p *Predictor) {
	s.predMu.Lock()
	s.pred = p
	s.predMu.Unlock()
}

// WithFaults arms the platform fault-injection layer: every subsequent
// Run wraps the simulated hardware in a fresh, seed-deterministic
// injector built from fc, so the policy and the DAQ observe degraded
// inputs (noisy/stale counters, stuck DPM transitions, thermal
// throttles, trace dropout) while the report keeps recording the true
// physics. Each Run replays the same fault sequence for the same
// workload and policy, which makes A/B policy comparisons under
// identical faults meaningful. It returns s for chaining; use
// WithoutFaults to disarm.
//
// Deprecated: WithFaults mutates shared System state. Prefer the
// construction option WithFaultInjection, or the per-run option
// RunWithFaults, both of which are safe while other runs are in flight.
func (s *System) WithFaults(fc FaultConfig) *System {
	s.faultsMu.Lock()
	s.faults = &fc
	s.faultsMu.Unlock()
	return s
}

// WithoutFaults disarms the fault-injection layer.
//
// Deprecated: see WithFaults; prefer RunWithoutFaults per run.
func (s *System) WithoutFaults() *System {
	s.faultsMu.Lock()
	s.faults = nil
	s.faultsMu.Unlock()
	return s
}
