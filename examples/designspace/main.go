// Designspace: exhaustive hardware balance exploration in the style of
// the paper's Figure 3 and Figure 6. For a chosen kernel, sweep all ~450
// compute/memory configurations, print the balance curves (normalized
// performance vs the platform's delivered ops/byte), locate the balance
// knee, and compare the configurations that optimize performance, energy,
// and ED².
//
//	go run ./examples/designspace [kernel]
package main

import (
	"fmt"
	"log"
	"os"

	"harmonia"
)

func main() {
	kernelName := "DeviceMemory.Stream"
	if len(os.Args) > 1 {
		kernelName = os.Args[1]
	}
	var kernel *harmonia.Kernel
	for _, k := range harmonia.AllKernels() {
		if k.Name == kernelName {
			kernel = k
		}
	}
	if kernel == nil {
		log.Fatalf("unknown kernel %q", kernelName)
	}

	sys := harmonia.NewSystem()
	minCfg := harmonia.MinConfig()
	baseTime := sys.Sim.Run(kernel, 0, minCfg).Time
	baseOPB := minCfg.OpsPerByte()

	fmt.Printf("balance exploration for %s (demand %.1f ops/byte, occupancy %.0f%%)\n\n",
		kernel.Name, kernel.DemandOpsPerByte(), kernel.Occupancy()*100)

	// One curve per memory configuration: the paper's Figure 3. For
	// brevity print each curve's endpoints and its knee at max memory.
	type pt struct{ x, perf float64 }
	var bestSample harmonia.Sample
	var bestCfg, bestEnergyCfg, bestED2Cfg harmonia.Config
	var bestEnergy, bestED2 harmonia.Sample
	first := true

	for _, cfg := range harmonia.ConfigSpace() {
		rep, err := sys.Run(&harmonia.Application{
			Name: "probe", Kernels: []*harmonia.Kernel{kernel}, Iterations: 1,
		}, sys.Fixed(cfg))
		if err != nil {
			log.Fatal(err)
		}
		s := rep.Sample()
		if first || s.Seconds < bestSample.Seconds {
			bestSample, bestCfg = s, cfg
		}
		if first || s.Energy() < bestEnergy.Energy() {
			bestEnergy, bestEnergyCfg = s, cfg
		}
		if first || s.ED2() < bestED2.ED2() {
			bestED2, bestED2Cfg = s, cfg
		}
		first = false
	}

	// Balance curve at maximum memory bandwidth.
	fmt.Println("balance curve at 264 GB/s (x = ops/byte normalized to min config):")
	for _, n := range []int{4, 8, 16, 24, 32} {
		for _, f := range []harmonia.MHz{300, 600, 1000} {
			cfg := harmonia.Config{
				Compute: harmonia.ComputeConfig{CUs: n, Freq: f},
				Memory:  harmonia.MaxConfig().Memory,
			}
			t := sys.Sim.Run(kernel, 0, cfg).Time
			p := pt{x: cfg.OpsPerByte() / baseOPB, perf: baseTime / t}
			bar := ""
			for i := 0.0; i < p.perf; i += 0.5 {
				bar += "#"
			}
			fmt.Printf("  x=%6.2f  perf=%6.2f  %s\n", p.x, p.perf, bar)
		}
	}

	fmt.Println("\nobjective winners across the full space:")
	fmt.Printf("  %-12s %-36v %9.3f ms  %6.1f W\n", "performance", bestCfg, bestSample.Seconds*1e3, bestSample.Watts)
	fmt.Printf("  %-12s %-36v %9.3f ms  %6.1f W\n", "energy", bestEnergyCfg, bestEnergy.Seconds*1e3, bestEnergy.Watts)
	fmt.Printf("  %-12s %-36v %9.3f ms  %6.1f W\n", "ED2", bestED2Cfg, bestED2.Seconds*1e3, bestED2.Watts)
	fmt.Printf("\nED2-optimal keeps %.1f%% of peak performance while saving %.1f%% energy\n",
		bestSample.Seconds/bestED2.Seconds*100,
		harmonia.Improvement(bestSample.Energy(), bestED2.Energy())*100)
}
