// Quickstart: run one application under the stock PowerTune baseline and
// under Harmonia, and compare time, power, energy, and ED².
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"harmonia"
)

func main() {
	sys := harmonia.NewSystem()

	// Pick an application from the paper's 14-app evaluation suite.
	app := harmonia.App("CoMD")
	fmt.Printf("running %s (%d iterations, kernels: %v)\n\n",
		app.Name, app.Iterations, app.KernelNames())

	// The baseline runs everything at the boost state: 32 CUs, 1 GHz,
	// 264 GB/s.
	base, err := sys.Run(app, sys.Baseline())
	if err != nil {
		log.Fatal(err)
	}

	// Harmonia predicts per-kernel sensitivities from performance
	// counters, jumps to the vicinity of the balance point (CG), and
	// fine-tunes with utilization feedback (FG). Note: policies are
	// stateful — use a fresh application instance per run.
	hm, err := sys.Run(harmonia.App("CoMD"), sys.Harmonia())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %10s %10s %12s %14s\n", "policy", "time (s)", "power (W)", "energy (J)", "ED2 (mJ·s²)")
	for _, r := range []*harmonia.Report{base, hm} {
		fmt.Printf("%-12s %10.4f %10.1f %12.2f %14.4f\n",
			r.Policy, r.TotalTime(), r.AveragePower(), r.TotalEnergy(), r.ED2()*1e3)
	}

	fmt.Printf("\nHarmonia vs baseline:\n")
	fmt.Printf("  performance: %+.2f%%\n", (hm.TotalTime()/base.TotalTime()-1)*100)
	fmt.Printf("  power:       %.1f%% saved\n", harmonia.Improvement(base.AveragePower(), hm.AveragePower())*100)
	fmt.Printf("  energy:      %.1f%% saved\n", harmonia.Improvement(base.TotalEnergy(), hm.TotalEnergy())*100)
	fmt.Printf("  ED2:         %.1f%% better\n", harmonia.Improvement(base.ED2(), hm.ED2())*100)

	// Where did each kernel settle? Print the final configuration
	// Harmonia chose per kernel.
	fmt.Println("\nfinal per-kernel configurations:")
	last := map[string]harmonia.Config{}
	for _, run := range hm.Runs {
		last[run.Kernel] = run.Config
	}
	for _, name := range app.KernelNames() {
		fmt.Printf("  %-24s %v\n", name, last[name])
	}
}
