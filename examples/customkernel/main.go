// Customkernel: define your own GPU kernel descriptor, characterize it
// on the simulated platform, retrain the sensitivity predictors with it
// included (the paper's Section 4 methodology), and let Harmonia manage
// it alongside the standard suite.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"harmonia"
)

func main() {
	// An FFT-like kernel: LDS-tiled butterflies with moderate register
	// pressure, little divergence, and bandwidth-hungry transposes.
	fft := &harmonia.Kernel{
		Name:          "Custom.FFT1D",
		WorkgroupSize: 256, Workgroups: 6000,
		VALUPerWI: 260, SALUPerWI: 16,
		FetchPerWI: 3, WritePerWI: 1, BytesPerFetch: 4, BytesPerWrite: 4,
		VGPRs: 40, SGPRs: 32, LDSBytes: 8192,
		Divergence: 0.04, L2Hit: 0.85, L2Thrash: 0.05, RowHit: 0.85,
		MLPPerWave: 2.5, SerialCycles: 15000, LaunchOverhead: 10e-6,
	}
	if err := fft.Validate(); err != nil {
		log.Fatal(err)
	}

	app := &harmonia.Application{
		Name:       "CustomFFT",
		Kernels:    []*harmonia.Kernel{fft},
		Iterations: 40,
	}

	sys := harmonia.NewSystem()

	// Characterize it: occupancy, demand, and what the simulator says at
	// the stock configuration.
	r := sys.Sim.Run(fft, 0, harmonia.MaxConfig())
	fmt.Printf("%s at stock config:\n", fft.Name)
	fmt.Printf("  occupancy %.0f%%, demand %.1f ops/byte\n", fft.Occupancy()*100, fft.DemandOpsPerByte())
	fmt.Printf("  time %.3f ms, VALUBusy %.0f%%, MemUnitBusy %.0f%%, icActivity %.2f\n",
		r.Time*1e3, r.Counters.VALUBusy, r.Counters.MemUnitBusy, r.Counters.ICActivity)

	// Retrain the sensitivity predictor with the custom kernel included,
	// exactly as the paper trains on its 25-kernel corpus.
	kernels := append(harmonia.AllKernels(), fft)
	pred, err := sys.TrainPredictor(kernels)
	if err != nil {
		log.Fatal(err)
	}
	sys.UsePredictor(pred)

	fmt.Printf("\npredicted sensitivities at the stock configuration:\n")
	fmt.Printf("  CU count: %.2f   CU freq: %.2f   memory BW: %.2f\n",
		pred.PredictCUs(r.Counters), pred.PredictCUFreq(r.Counters), pred.PredictBandwidth(r.Counters))

	// Run under baseline and Harmonia.
	base, err := sys.Run(app, sys.Baseline())
	if err != nil {
		log.Fatal(err)
	}
	hm, err := sys.Run(app, sys.Harmonia())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nHarmonia vs baseline on %s:\n", app.Name)
	fmt.Printf("  performance %+.2f%%, power %.1f%% saved, ED2 %.1f%% better\n",
		(hm.TotalTime()/base.TotalTime()-1)*100,
		harmonia.Improvement(base.AveragePower(), hm.AveragePower())*100,
		harmonia.Improvement(base.ED2(), hm.ED2())*100)
	final := hm.Runs[len(hm.Runs)-1].Config
	fmt.Printf("  settled configuration: %v\n", final)
}
