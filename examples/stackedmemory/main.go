// Stackedmemory: the paper's future-work scenario (Section 7.3, insight
// 6). With on-package DRAM, compute and memory share one thermal
// envelope; this example runs a memory-heavy workload inside a stacked-
// package thermal model with a throttle guard and shows that coordinated
// power management (Harmonia) avoids the thermal throttling that the
// uncoordinated baseline triggers.
//
//	go run ./examples/stackedmemory
package main

import (
	"fmt"
	"log"

	"harmonia"
	"harmonia/internal/policy"
	"harmonia/internal/session"
	"harmonia/internal/thermal"
)

func main() {
	sys := harmonia.NewSystem()
	const throttleC = 85

	fmt.Printf("stacked-package envelope, throttle at %d°C, workload: DeviceMemory + miniFE\n\n", throttleC)
	fmt.Printf("%-10s %10s %12s %12s %12s\n", "policy", "peak °C", "throttled", "time (ms)", "avg W")

	type outcome struct {
		name      string
		peak      float64
		throttled int
		timeS     float64
		watts     float64
	}
	var outcomes []outcome

	for _, p := range []struct {
		name string
		make func() harmonia.Policy
	}{
		{"baseline", func() harmonia.Policy { return policy.NewBaseline() }},
		{"harmonia", func() harmonia.Policy { return sys.Harmonia() }},
	} {
		total := outcome{name: p.name}
		for _, appName := range []string{"DeviceMemory", "miniFE"} {
			die := thermal.New(thermal.StackedParams())
			guard := thermal.NewThrottle(p.make(), die, sys.Power, throttleC)
			sess := &session.Session{Sim: sys.Sim, Power: sys.Power, Policy: guard}
			rep, err := sess.Run(harmonia.App(appName))
			if err != nil {
				log.Fatal(err)
			}
			if guard.PeakC > total.peak {
				total.peak = guard.PeakC
			}
			total.throttled += guard.ThrottledKernels
			total.timeS += rep.TotalTime()
			total.watts += rep.TotalEnergy()
		}
		total.watts /= total.timeS
		outcomes = append(outcomes, total)
		fmt.Printf("%-10s %10.1f %12d %12.3f %12.1f\n",
			total.name, total.peak, total.throttled, total.timeS*1e3, total.watts)
	}

	base, hm := outcomes[0], outcomes[1]
	fmt.Printf("\ncoordinated management under the shared envelope:\n")
	fmt.Printf("  %.1f°C cooler at peak, %d fewer throttled invocations, %+.2f%% performance\n",
		base.peak-hm.peak, base.throttled-hm.throttled, (hm.timeS/base.timeS-1)*-100)
}
