// Graph500: phase-adaptive power management on a breadth-first-search
// workload, reproducing the behaviour of the paper's Figures 14-16. The
// BFS frontier grows and collapses across iterations, swinging the main
// kernel's instruction volume several-fold; Harmonia pins the compute
// side (high divergence makes it compute sensitive) and dithers the
// memory bus frequency as bandwidth demand moves.
//
//	go run ./examples/graph500
package main

import (
	"fmt"
	"log"
	"sort"

	"harmonia"
)

func main() {
	sys := harmonia.NewSystem()
	app := harmonia.App("Graph500")

	ctrl := sys.Harmonia()
	rep, err := sys.Run(app, ctrl)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 14: the time-varying work of the main BFS kernel.
	fmt.Println("BottomStepUp phase behaviour (first BFS traversal):")
	fmt.Printf("  %4s %14s %12s %10s %s\n", "iter", "VALU insts", "time (ms)", "mem busy", "config chosen")
	for _, run := range rep.Runs {
		if run.Kernel != "Graph500.BottomStepUp" || run.Iter >= 8 {
			continue
		}
		fmt.Printf("  %4d %14.0f %12.3f %9.1f%% %v\n",
			run.Iter, run.Result.Counters.VALUInsts, run.Result.Time*1e3,
			run.Result.Counters.MemUnitBusy, run.Config)
	}

	// Figures 15-16: where did each tunable spend its time?
	fmt.Println("\ntunable residency over the whole run:")
	for _, tu := range []harmonia.Tunable{harmonia.TunableCUs, harmonia.TunableCUFreq, harmonia.TunableMemFreq} {
		res := rep.Residency(tu)
		states := make([]int, 0, len(res))
		for s := range res {
			states = append(states, s)
		}
		sort.Ints(states)
		fmt.Printf("  %-8v", tu)
		for _, s := range states {
			fmt.Printf("  %5d: %5.1f%%", s, res[s]*100)
		}
		fmt.Println()
	}

	// How did it pay off?
	base, err := sys.Run(harmonia.App("Graph500"), sys.Baseline())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvs baseline: ED2 %+.1f%%, power %+.1f%%, performance %+.2f%%\n",
		harmonia.Improvement(base.ED2(), rep.ED2())*100,
		-harmonia.Improvement(base.AveragePower(), rep.AveragePower())*100,
		(rep.TotalTime()/base.TotalTime()-1)*100)
	fmt.Println("controller:", ctrl)
}
