#!/bin/sh
# Benchmark gate for the simulation memo and the batch engine. Runs the
# infrastructure benchmarks from bench_test.go, emits the headline
# numbers as BENCH_sweep.json (the repo's benchmark data points are
# BENCH_*.json files at the root), and fails if the memoized oracle
# sweep is not at least 5x faster than the uncached sweep.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_sweep.json}"

# Repeat-invocation oracle sweeps: many fast iterations for a stable
# ns/op. The suite pair rebuilds a full environment per iteration, so a
# single timed iteration is what a cold suite run costs.
oracle="$(go test -run '^$' -bench 'BenchmarkOracleSweep(Uncached|Cached)$' -benchtime 50x .)"
suite="$(go test -run '^$' -bench 'BenchmarkSuite(Serial|Parallel)$' -benchtime 1x .)"

uncached="$(printf '%s\n' "$oracle" | awk '$1 ~ /^BenchmarkOracleSweepUncached/ {print $3}')"
cached="$(printf '%s\n' "$oracle" | awk '$1 ~ /^BenchmarkOracleSweepCached/ {print $3}')"
serial="$(printf '%s\n' "$suite" | awk '$1 ~ /^BenchmarkSuiteSerial/ {print $3}')"
parallel="$(printf '%s\n' "$suite" | awk '$1 ~ /^BenchmarkSuiteParallel/ {print $3}')"

if [ -z "$uncached" ] || [ -z "$cached" ] || [ -z "$serial" ] || [ -z "$parallel" ]; then
	echo "bench.sh: failed to parse benchmark output" >&2
	printf '%s\n%s\n' "$oracle" "$suite" >&2
	exit 1
fi

awk -v u="$uncached" -v c="$cached" -v s="$serial" -v p="$parallel" -v out="$out" '
BEGIN {
	osp = u / c
	ssp = s / p
	printf "{\n" > out
	printf "  \"benchmark\": \"sweep\",\n" >> out
	printf "  \"oracle_sweep\": {\n" >> out
	printf "    \"uncached_ns_op\": %.0f,\n", u >> out
	printf "    \"cached_ns_op\": %.0f,\n", c >> out
	printf "    \"speedup\": %.2f\n", osp >> out
	printf "  },\n" >> out
	printf "  \"suite\": {\n" >> out
	printf "    \"serial_ns_op\": %.0f,\n", s >> out
	printf "    \"parallel_ns_op\": %.0f,\n", p >> out
	printf "    \"speedup\": %.2f\n", ssp >> out
	printf "  }\n" >> out
	printf "}\n" >> out
	printf "oracle sweep: %.0f ns/op uncached, %.0f ns/op cached (%.1fx)\n", u, c, osp
	printf "suite run:    %.0f ns/op serial, %.0f ns/op parallel (%.1fx)\n", s, p, ssp
	if (osp < 5) {
		printf "bench.sh: cached oracle sweep speedup %.2fx is below the 5x gate\n", osp > "/dev/stderr"
		exit 1
	}
}'
echo "wrote $out"
