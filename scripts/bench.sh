#!/bin/sh
# Benchmark gate for the simulation memo, the batch engine, the span
# recorder, and the parallel-scaling behaviour of the suite. Runs the
# infrastructure benchmarks from bench_test.go, emits the headline
# numbers as BENCH_sweep.json (the repo's benchmark data points are
# BENCH_*.json files at the root), and fails if:
#   - the memoized oracle sweep is not at least 5x faster than uncached;
#   - tracing the cached sweep costs more than 5% over running it
#     untraced (the untraced run exercises the nil-recorder fast path,
#     a strict subset of the traced work, so the same gate bounds the
#     disabled-tracing cost);
#   - the uncached oracle sweep allocates more than 232 allocs/op (40%
#     below the 387 allocs/op the pre-overhaul sweep burned — the gate
#     that keeps the zero-allocation fast path from rotting);
#   - the 4-worker suite speedup falls below a machine-aware floor:
#     3.0x when the machine has >= 4 CPUs, 0.75x otherwise (a starved
#     box cannot speed up, but parallel bookkeeping must stay cheap).
#     The old single serial/parallel pair recorded 1.17x for years
#     without tripping anything; the explicit worker axis is the fix.
#   - running a cached workload through the System with NO flight
#     recorder attached costs more than 5% over driving the session
#     directly (the recorder-off path is one nil check per kernel
#     boundary; this gate keeps it that way). Recording overhead
#     (recorder attached) is reported but not gated — bucketing every
#     DAQ sample and appending a decision per boundary is real work.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_sweep.json}"

# Repeat-invocation oracle sweeps: many fast iterations for a stable
# ns/op, with -benchmem so the allocation gate sees allocs/op. The
# suite axis rebuilds a full environment per iteration, so a single
# timed iteration is what a cold suite run costs at each worker count.
# The tracing pairs take the minimum of repeated interleaved runs
# (-count) so the <5% gate compares best-case against best-case, not
# noise against noise.
oracle="$(go test -run '^$' -bench 'BenchmarkOracleSweep(Uncached|Cached)$' -benchtime 50x -benchmem .)"
tracing="$(go test -run '^$' -bench 'BenchmarkCachedSweepMin(NilTraced)?$|BenchmarkOracleSweepCached(Traced)?$' -benchtime 200x -count 5 .)"
suite="$(go test -run '^$' -bench 'BenchmarkSuite(Serial|Workers2|Workers4|Parallel)$' -benchtime 1x .)"
timeline="$(go test -run '^$' -bench 'BenchmarkCachedRun(Base|TimelineOff|TimelineOn)$' -benchtime 100x -count 5 .)"

min_ns() { # min_ns <output> <exact-benchmark-name>
	printf '%s\n' "$1" | awk -v name="$2" '
		$1 == name || $1 ~ "^"name"-[0-9]+$" { if (best == "" || $3+0 < best+0) best = $3 }
		END { print best }'
}

uncached="$(printf '%s\n' "$oracle" | awk '$1 ~ /^BenchmarkOracleSweepUncached/ {print $3}')"
uncached_allocs="$(printf '%s\n' "$oracle" | awk '$1 ~ /^BenchmarkOracleSweepUncached/ {print $7}')"
uncached_bytes="$(printf '%s\n' "$oracle" | awk '$1 ~ /^BenchmarkOracleSweepUncached/ {print $5}')"
cached="$(printf '%s\n' "$oracle" | awk '$1 ~ /^BenchmarkOracleSweepCached/ {print $3}')"
plain_min="$(min_ns "$tracing" "BenchmarkCachedSweepMin")"
nil_min="$(min_ns "$tracing" "BenchmarkCachedSweepMinNilTraced")"
untraced_min="$(min_ns "$tracing" "BenchmarkOracleSweepCached")"
traced_min="$(min_ns "$tracing" "BenchmarkOracleSweepCachedTraced")"
run_base_min="$(min_ns "$timeline" "BenchmarkCachedRunBase")"
run_off_min="$(min_ns "$timeline" "BenchmarkCachedRunTimelineOff")"
run_on_min="$(min_ns "$timeline" "BenchmarkCachedRunTimelineOn")"
serial="$(printf '%s\n' "$suite" | awk '$1 ~ /^BenchmarkSuiteSerial/ {print $3}')"
workers2="$(printf '%s\n' "$suite" | awk '$1 ~ /^BenchmarkSuiteWorkers2/ {print $3}')"
workers4="$(printf '%s\n' "$suite" | awk '$1 ~ /^BenchmarkSuiteWorkers4/ {print $3}')"
parallel="$(printf '%s\n' "$suite" | awk '$1 ~ /^BenchmarkSuiteParallel/ {print $3}')"
# GOMAXPROCS, read off the -N suffix Go stamps on benchmark names.
maxprocs="$(printf '%s\n' "$suite" | awk '$1 ~ /^BenchmarkSuiteParallel/ {
	n = $1; sub(/^.*-/, "", n); print (n ~ /^[0-9]+$/) ? n : 1; exit }')"

if [ -z "$uncached" ] || [ -z "$cached" ] || [ -z "$serial" ] || [ -z "$parallel" ] ||
	[ -z "$workers2" ] || [ -z "$workers4" ] || [ -z "$uncached_allocs" ] ||
	[ -z "$plain_min" ] || [ -z "$nil_min" ] || [ -z "$untraced_min" ] || [ -z "$traced_min" ] ||
	[ -z "$run_base_min" ] || [ -z "$run_off_min" ] || [ -z "$run_on_min" ]; then
	echo "bench.sh: failed to parse benchmark output" >&2
	printf '%s\n%s\n%s\n%s\n' "$oracle" "$tracing" "$suite" "$timeline" >&2
	exit 1
fi

awk -v u="$uncached" -v ua="$uncached_allocs" -v ub="$uncached_bytes" \
	-v c="$cached" -v s="$serial" -v w2="$workers2" -v w4="$workers4" -v p="$parallel" \
	-v mp="$maxprocs" \
	-v pm="$plain_min" -v nm="$nil_min" -v tu="$untraced_min" -v tt="$traced_min" \
	-v rb="$run_base_min" -v ro="$run_off_min" -v rn="$run_on_min" -v out="$out" '
BEGIN {
	osp = u / c
	ssp = s / p
	sp2 = s / w2
	sp4 = s / w4
	disabled = nm / pm - 1
	enabled = tt / tu - 1
	tloff = ro / rb - 1
	tlrec = rn / ro - 1
	# Machine-aware scaling floor: an honest 3x at 4 workers needs 4
	# CPUs; on a starved box the gate only bounds the bookkeeping cost.
	floor4 = (mp >= 4) ? 3.0 : 0.75
	printf "{\n" > out
	printf "  \"benchmark\": \"sweep\",\n" >> out
	printf "  \"oracle_sweep\": {\n" >> out
	printf "    \"uncached_ns_op\": %.0f,\n", u >> out
	printf "    \"cached_ns_op\": %.0f,\n", c >> out
	printf "    \"speedup\": %.2f,\n", osp >> out
	printf "    \"uncached_bytes_per_op\": %.0f,\n", ub >> out
	printf "    \"uncached_allocs_per_op\": %.0f\n", ua >> out
	printf "  },\n" >> out
	printf "  \"tracing\": {\n" >> out
	printf "    \"sweep_min_ns_op\": %.0f,\n", pm >> out
	printf "    \"sweep_min_nil_traced_ns_op\": %.0f,\n", nm >> out
	printf "    \"disabled_overhead\": %.4f,\n", disabled >> out
	printf "    \"oracle_untraced_ns_op\": %.0f,\n", tu >> out
	printf "    \"oracle_traced_ns_op\": %.0f,\n", tt >> out
	printf "    \"enabled_overhead\": %.4f\n", enabled >> out
	printf "  },\n" >> out
	printf "  \"timeline\": {\n" >> out
	printf "    \"run_base_ns_op\": %.0f,\n", rb >> out
	printf "    \"run_recorder_off_ns_op\": %.0f,\n", ro >> out
	printf "    \"recorder_off_overhead\": %.4f,\n", tloff >> out
	printf "    \"run_recorder_on_ns_op\": %.0f,\n", rn >> out
	printf "    \"recording_overhead\": %.4f\n", tlrec >> out
	printf "  },\n" >> out
	printf "  \"suite\": {\n" >> out
	printf "    \"serial_ns_op\": %.0f,\n", s >> out
	printf "    \"workers2_ns_op\": %.0f,\n", w2 >> out
	printf "    \"workers4_ns_op\": %.0f,\n", w4 >> out
	printf "    \"parallel_ns_op\": %.0f,\n", p >> out
	printf "    \"max_workers\": %d,\n", mp >> out
	printf "    \"speedup\": %.2f,\n", ssp >> out
	printf "    \"speedup_by_workers\": {\"1\": 1.00, \"2\": %.2f, \"4\": %.2f, \"max\": %.2f},\n", sp2, sp4, ssp >> out
	printf "    \"workers4_speedup_floor\": %.2f\n", floor4 >> out
	printf "  }\n" >> out
	printf "}\n" >> out
	printf "oracle sweep:    %.0f ns/op uncached (%.0f allocs/op), %.0f ns/op cached (%.1fx)\n", u, ua, c, osp
	printf "tracing (off):   %.0f ns/op plain, %.0f ns/op nil-traced (%+.1f%%)\n", pm, nm, disabled * 100
	printf "tracing (live):  %.0f ns/op untraced, %.0f ns/op traced (%+.1f%%)\n", tu, tt, enabled * 100
	printf "timeline (off):  %.0f ns/op base, %.0f ns/op recorder-off (%+.1f%%)\n", rb, ro, tloff * 100
	printf "timeline (live): %.0f ns/op recorder-on (%+.1f%% over off)\n", rn, tlrec * 100
	printf "suite scaling:   1w %.0f, 2w %.0f (%.2fx), 4w %.0f (%.2fx), %dw %.0f (%.2fx)\n", s, w2, sp2, w4, sp4, mp, p, ssp
	if (osp < 5) {
		printf "bench.sh: cached oracle sweep speedup %.2fx is below the 5x gate\n", osp > "/dev/stderr"
		exit 1
	}
	# The gate from DESIGN.md section 12: tracing left disabled (the nil
	# fast path) must cost under 5% on the cached sweep. Live tracing
	# overhead is recorded but not gated — recording spans does real work.
	if (disabled > 0.05) {
		printf "bench.sh: disabled-tracing overhead %.1f%% on the cached sweep exceeds the 5%% gate\n", disabled * 100 > "/dev/stderr"
		exit 1
	}
	# The flight-recorder gate from DESIGN.md section 14: a run with the
	# recorder left off must cost the same as a bare session drive.
	if (tloff > 0.05) {
		printf "bench.sh: recorder-off overhead %.1f%% on the cached run exceeds the 5%% gate\n", tloff * 100 > "/dev/stderr"
		exit 1
	}
	# The gates from DESIGN.md section 13: the allocation budget of the
	# uncached sweep (40% under the pre-overhaul 387 allocs/op) and the
	# machine-aware 4-worker scaling floor.
	if (ua > 232) {
		printf "bench.sh: uncached oracle sweep burns %.0f allocs/op, above the 232 ceiling\n", ua > "/dev/stderr"
		exit 1
	}
	if (sp4 < floor4) {
		printf "bench.sh: 4-worker suite speedup %.2fx is below the %.2fx floor (GOMAXPROCS=%d)\n", sp4, floor4, mp > "/dev/stderr"
		exit 1
	}
}'
echo "wrote $out"
