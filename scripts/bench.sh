#!/bin/sh
# Benchmark gate for the simulation memo, the batch engine, and the span
# recorder. Runs the infrastructure benchmarks from bench_test.go, emits
# the headline numbers as BENCH_sweep.json (the repo's benchmark data
# points are BENCH_*.json files at the root), and fails if the memoized
# oracle sweep is not at least 5x faster than the uncached sweep, or if
# tracing the cached sweep costs more than 5% over running it untraced
# (the untraced run exercises the nil-recorder fast path, which is a
# strict subset of the traced work, so the same gate bounds the
# disabled-tracing cost).
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_sweep.json}"

# Repeat-invocation oracle sweeps: many fast iterations for a stable
# ns/op. The suite pair rebuilds a full environment per iteration, so a
# single timed iteration is what a cold suite run costs. The tracing
# pairs take the minimum of repeated interleaved runs (-count) so the
# <5% gate compares best-case against best-case, not noise against
# noise.
oracle="$(go test -run '^$' -bench 'BenchmarkOracleSweep(Uncached|Cached)$' -benchtime 50x .)"
tracing="$(go test -run '^$' -bench 'BenchmarkCachedSweepMin(NilTraced)?$|BenchmarkOracleSweepCached(Traced)?$' -benchtime 200x -count 5 .)"
suite="$(go test -run '^$' -bench 'BenchmarkSuite(Serial|Parallel)$' -benchtime 1x .)"

min_ns() { # min_ns <output> <exact-benchmark-name>
	printf '%s\n' "$1" | awk -v name="$2" '
		$1 == name || $1 ~ "^"name"-[0-9]+$" { if (best == "" || $3+0 < best+0) best = $3 }
		END { print best }'
}

uncached="$(printf '%s\n' "$oracle" | awk '$1 ~ /^BenchmarkOracleSweepUncached/ {print $3}')"
cached="$(printf '%s\n' "$oracle" | awk '$1 ~ /^BenchmarkOracleSweepCached/ {print $3}')"
plain_min="$(min_ns "$tracing" "BenchmarkCachedSweepMin")"
nil_min="$(min_ns "$tracing" "BenchmarkCachedSweepMinNilTraced")"
untraced_min="$(min_ns "$tracing" "BenchmarkOracleSweepCached")"
traced_min="$(min_ns "$tracing" "BenchmarkOracleSweepCachedTraced")"
serial="$(printf '%s\n' "$suite" | awk '$1 ~ /^BenchmarkSuiteSerial/ {print $3}')"
parallel="$(printf '%s\n' "$suite" | awk '$1 ~ /^BenchmarkSuiteParallel/ {print $3}')"

if [ -z "$uncached" ] || [ -z "$cached" ] || [ -z "$serial" ] || [ -z "$parallel" ] ||
	[ -z "$plain_min" ] || [ -z "$nil_min" ] || [ -z "$untraced_min" ] || [ -z "$traced_min" ]; then
	echo "bench.sh: failed to parse benchmark output" >&2
	printf '%s\n%s\n%s\n' "$oracle" "$tracing" "$suite" >&2
	exit 1
fi

awk -v u="$uncached" -v c="$cached" -v s="$serial" -v p="$parallel" \
	-v pm="$plain_min" -v nm="$nil_min" -v tu="$untraced_min" -v tt="$traced_min" -v out="$out" '
BEGIN {
	osp = u / c
	ssp = s / p
	disabled = nm / pm - 1
	enabled = tt / tu - 1
	printf "{\n" > out
	printf "  \"benchmark\": \"sweep\",\n" >> out
	printf "  \"oracle_sweep\": {\n" >> out
	printf "    \"uncached_ns_op\": %.0f,\n", u >> out
	printf "    \"cached_ns_op\": %.0f,\n", c >> out
	printf "    \"speedup\": %.2f\n", osp >> out
	printf "  },\n" >> out
	printf "  \"tracing\": {\n" >> out
	printf "    \"sweep_min_ns_op\": %.0f,\n", pm >> out
	printf "    \"sweep_min_nil_traced_ns_op\": %.0f,\n", nm >> out
	printf "    \"disabled_overhead\": %.4f,\n", disabled >> out
	printf "    \"oracle_untraced_ns_op\": %.0f,\n", tu >> out
	printf "    \"oracle_traced_ns_op\": %.0f,\n", tt >> out
	printf "    \"enabled_overhead\": %.4f\n", enabled >> out
	printf "  },\n" >> out
	printf "  \"suite\": {\n" >> out
	printf "    \"serial_ns_op\": %.0f,\n", s >> out
	printf "    \"parallel_ns_op\": %.0f,\n", p >> out
	printf "    \"speedup\": %.2f\n", ssp >> out
	printf "  }\n" >> out
	printf "}\n" >> out
	printf "oracle sweep:    %.0f ns/op uncached, %.0f ns/op cached (%.1fx)\n", u, c, osp
	printf "tracing (off):   %.0f ns/op plain, %.0f ns/op nil-traced (%+.1f%%)\n", pm, nm, disabled * 100
	printf "tracing (live):  %.0f ns/op untraced, %.0f ns/op traced (%+.1f%%)\n", tu, tt, enabled * 100
	printf "suite run:       %.0f ns/op serial, %.0f ns/op parallel (%.1fx)\n", s, p, ssp
	if (osp < 5) {
		printf "bench.sh: cached oracle sweep speedup %.2fx is below the 5x gate\n", osp > "/dev/stderr"
		exit 1
	}
	# The gate from DESIGN.md section 12: tracing left disabled (the nil
	# fast path) must cost under 5% on the cached sweep. Live tracing
	# overhead is recorded but not gated — recording spans does real work.
	if (disabled > 0.05) {
		printf "bench.sh: disabled-tracing overhead %.1f%% on the cached sweep exceeds the 5%% gate\n", disabled * 100 > "/dev/stderr"
		exit 1
	}
}'
echo "wrote $out"
