#!/bin/sh
# Pre-commit gate: formatting, build, vet, race-detector test run, and a
# focused race pass over the concurrent service layer.
set -eux
cd "$(dirname "$0")/.."
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi
go build ./...
go vet ./...
go test -race ./...
go test -race -count=1 ./internal/serve/... ./internal/telemetry/...
