#!/bin/sh
# Pre-commit gate: formatting, build, vet, the harmonia-lint domain
# analyzers (-werror: malformed suppressions fail too; timed against a
# 10s budget, with the suggested-fix layer gated on -diff emptiness and
# the fix-application tests), race-detector
# test run, a focused race pass over the concurrent service layer, an
# observability smoke (the spans endpoint in both formats, the tracing
# inertness gates, and the debug mux), the hot-path equivalence gates
# (golden float bits across the gpusim invariant hoisting, budgeted
# nested parallelism vs serial, allocation-free sweeps), a bounded
# chaos-soak of the resilience layer (make soak), and the benchmark
# gate (simulation-memo speedup, the disabled-tracing overhead cap,
# the sweep allocation ceiling, and the machine-aware parallel-scaling
# floor, BENCH_sweep.json).
set -eux
cd "$(dirname "$0")/.."
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi
go build ./...
go vet ./...
# Domain lint must stay fast enough for pre-commit use: the ten-analyzer
# run, including the module-wide call-graph build, is budgeted at 10
# seconds (the binary is already built, so this times analysis).
lint_start=$(date +%s)
go run ./cmd/harmonia-lint -werror ./...
lint_elapsed=$(( $(date +%s) - lint_start ))
if [ "$lint_elapsed" -gt 10 ]; then
	echo "harmonia-lint took ${lint_elapsed}s; the pre-commit budget is 10s" >&2
	exit 1
fi
# lint-fix-check: the suggested-fix layer stays machine-applicable.
# -diff over the clean tree must print nothing (no fixable findings
# pending), and the scratch-module fix tests pin the -fix output bytes,
# gofmt cleanliness, and idempotence.
fixdiff="$(go run ./cmd/harmonia-lint -diff ./... || true)"
if [ -n "$fixdiff" ]; then
	echo "harmonia-lint -diff shows pending fixable findings:" >&2
	echo "$fixdiff" >&2
	exit 1
fi
go test -count=1 -run 'TestFixApply|TestFixDiff' ./internal/lint/
# The full race pass needs explicit headroom: this container is
# single-CPU and internal/eventsim alone runs close to go test's
# default 10m per-binary alarm under the race detector.
go test -race -timeout 30m ./...
go test -race -count=1 ./internal/serve/... ./internal/telemetry/...
# Observability smoke: spans endpoint round-trips (native + chrome),
# request/trace correlation, tracing inertness, and the pprof/expvar
# debug handler.
go test -count=1 -run 'TestGetSpans|TestTraceparentAdopted|TestRequestIDMintedAndEchoed|TestDebugHandler' ./internal/serve/
go test -count=1 -run 'TestTracedRunBitIdentical|TestSameSeedSpanTreesByteIdentical' .
# Flight-recorder smoke: recorder inertness and same-seed timeline
# byte-identity (the determinism the /v1/runs/{id}/timeline contract
# rests on).
go test -count=1 -run 'TestTimelineRunBitIdentical|TestSameSeedTimelinesByteIdentical' .
# Hot-path equivalence gates: the hoisted gpusim invariants must stay
# bit-exact against the embedded golden float bits, budgeted nested
# parallelism must reproduce the serial pipeline byte for byte, and the
# pooled sweep scratch must stay allocation-free at steady state.
go test -count=1 -run 'TestGoldenBits' ./internal/gpusim/
go test -count=1 -run 'TestBudgetedNestedSweepBitIdentical|TestEnvBudgetSplitSuiteBitIdentical' .
go test -count=1 -run 'TestMinAllocationFree' ./internal/sweep/
make soak SOAK_ITERS="${SOAK_ITERS:-4}"
sh scripts/bench.sh
