#!/bin/sh
# Pre-commit gate: formatting, build, vet, the harmonia-lint domain
# analyzers (-werror: malformed suppressions fail too), race-detector
# test run, a focused race pass over the concurrent service layer, a
# bounded chaos-soak of the resilience layer (make soak), and the
# benchmark gate (simulation-memo speedup, BENCH_sweep.json).
set -eux
cd "$(dirname "$0")/.."
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi
go build ./...
go vet ./...
go run ./cmd/harmonia-lint -werror ./...
go test -race ./...
go test -race -count=1 ./internal/serve/... ./internal/telemetry/...
make soak SOAK_ITERS="${SOAK_ITERS:-4}"
sh scripts/bench.sh
